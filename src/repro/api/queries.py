"""Declarative query objects.

A query describes *what* to compute — endpoints, estimator, budget —
without touching a graph.  The :class:`~repro.api.session.Session`
decides *how*: which queries share a compiled plan, which share a
sampled world batch, and which must run on their own.

Two query kinds cover the paper's pipeline:

* :class:`ReliabilityQuery` — estimate ``R(s, t)`` (or ``R(s, t_i)`` for
  several targets at once; a multi-target query costs one BFS sweep on
  the engine because reachability from ``s`` answers every target).
* :class:`MaximizeQuery` — Problem 1: add ``k`` new ``zeta``-probability
  edges to maximize ``R(s, t)`` with any of the paper's methods.

A :class:`Workload` is an ordered bag of queries over one graph —
the unit of batching the session optimizes across.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..reliability import ReliabilityEstimator, estimator_spec

Pair = Tuple[int, int]


def _check_deadline(deadline_ms: Optional[float]) -> None:
    # `not (x > 0)` rather than `x <= 0`: NaN must fail validation too.
    if deadline_ms is not None and not deadline_ms > 0:
        raise ValueError(f"deadline_ms must be > 0, got {deadline_ms!r}")


def _normalize_targets(
    target: Optional[int],
    targets: Optional[Sequence[int]],
) -> Tuple[int, ...]:
    if (target is None) == (targets is None):
        raise ValueError("provide exactly one of target= or targets=")
    if target is not None:
        return (target,)
    normalized = tuple(targets)
    if not normalized:
        raise ValueError("targets must be non-empty")
    return normalized


@dataclass(frozen=True)
class ReliabilityQuery:
    """Estimate the reliability of ``source`` -> target(s).

    Parameters
    ----------
    source:
        Source node id.
    target / targets:
        One target node id, or several (mutually exclusive).  All
        targets of one query are answered inside the same sampled
        worlds, so the estimates are mutually consistent.
    estimator:
        Registry name (``"mc"``, ``"rss"``, ``"lazy"``, ``"adaptive"``,
        or anything registered via ``register_estimator``).
    samples:
        Sample budget Z (the cap for adaptive estimators).
    seed:
        Per-query seed override; ``None`` inherits the session seed.
        Queries with equal ``(estimator, samples, seed)`` share sampled
        worlds when the estimator's registry entry allows it.
    deadline_ms:
        Serving-layer budget: when set, an ``AsyncSession`` expires the
        request at flush time if it has waited longer than this, so a
        stale request never costs a shared batch any work (HTTP maps
        expiry to 504).  Ignored by direct ``Session.run`` execution.
        Excluded from equality: a retry with a fresh deadline is the
        same query.

    Examples
    --------
    >>> ReliabilityQuery(0, targets=(3, 5), samples=500).pairs
    [(0, 3), (0, 5)]
    >>> ReliabilityQuery(0, target=1, estimator="no-such")
    ... # doctest: +IGNORE_EXCEPTION_DETAIL
    Traceback (most recent call last):
        ...
    ValueError: unknown estimator 'no-such'
    """

    source: int
    target: Optional[int] = None
    targets: Optional[Tuple[int, ...]] = None
    estimator: str = "mc"
    samples: int = 1000
    seed: Optional[int] = None
    deadline_ms: Optional[float] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        normalized = _normalize_targets(self.target, self.targets)
        object.__setattr__(self, "targets", normalized)
        if self.samples < 1:
            raise ValueError("samples must be positive")
        if self.seed is not None and self.seed < 0:
            # The engine's numpy generator rejects negative seeds at
            # execution time; fail here instead, before the query can
            # enter a shared batch.
            raise ValueError("seed must be non-negative")
        _check_deadline(self.deadline_ms)
        estimator_spec(self.estimator)  # fail fast on unknown names

    @property
    def pairs(self) -> List[Pair]:
        """The (source, target) pairs this query asks about."""
        return [(self.source, t) for t in self.targets]


@dataclass(frozen=True)
class MaximizeQuery:
    """Problem 1: add ``k`` new edges maximizing ``R(source, target)``.

    ``estimator``/``samples``/``seed`` configure the sampler used inside
    the selection loop; ``None`` values inherit the session's defaults
    (overriding ``samples``/``seed`` requires a registry-built default —
    a custom estimator *instance* on the session cannot be rebuilt and
    the overrides are ignored with a warning).
    ``new_edge_prob``, ``candidate_space`` and ``eliminate`` mirror the
    advanced knobs of the legacy facade (sharing one Algorithm 4 run
    across methods, reproducing the no-elimination tables).
    ``deadline_ms`` carries the same serving-layer budget semantics as
    :attr:`ReliabilityQuery.deadline_ms`.

    Examples
    --------
    >>> from repro.graph import UncertainGraph
    >>> from repro.api import MaximizeQuery, Session
    >>> g = UncertainGraph.from_edges(
    ...     [(0, 1, 0.8), (1, 2, 0.4), (2, 3, 0.7)])
    >>> result = Session(g, r=10, l=10).maximize(
    ...     MaximizeQuery(0, 3, k=1, zeta=0.5, method="hc"))
    >>> len(result.edges)
    1
    >>> result.gain > 0
    True
    """

    source: int
    target: int
    k: int = 5
    zeta: float = 0.5
    method: str = "be"
    estimator: Optional[Union[str, ReliabilityEstimator]] = None
    samples: Optional[int] = None
    seed: Optional[int] = None
    new_edge_prob: Optional[object] = field(default=None, compare=False)
    candidate_space: Optional[object] = field(default=None, compare=False)
    eliminate: bool = True
    deadline_ms: Optional[float] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        from ..core.facade import METHODS  # local: avoid import cycle

        if self.k < 1:
            raise ValueError("k must be positive")
        if self.method not in METHODS:
            # Fail at construction, not mid-batch: a query that blows
            # up inside a shared workload costs its companions a rerun.
            raise ValueError(
                f"unknown method {self.method!r}; expected one of {METHODS}"
            )
        if not 0.0 <= self.zeta <= 1.0:
            raise ValueError(f"zeta {self.zeta!r} outside [0, 1]")
        if self.samples is not None and self.samples < 1:
            raise ValueError("samples must be positive")
        if self.seed is not None and self.seed < 0:
            raise ValueError("seed must be non-negative")
        _check_deadline(self.deadline_ms)
        if isinstance(self.estimator, str):
            estimator_spec(self.estimator)  # fail fast on unknown names


Query = Union[ReliabilityQuery, MaximizeQuery]


class Workload:
    """An ordered collection of queries answered against one graph.

    The session executes a workload as a unit: one compiled plan for
    every query, and one shared world batch per ``(samples, seed)``
    group of world-sharing estimators.  Order of results always matches
    order of queries.

    Examples
    --------
    >>> workload = Workload.reliability([(0, 2), (1, 2)], samples=500)
    >>> _ = workload.add(MaximizeQuery(0, 2, k=3))
    >>> len(workload)
    3
    >>> workload
    Workload(1 MaximizeQuery, 2 ReliabilityQuery)
    """

    def __init__(self, queries: Iterable[Query] = ()) -> None:
        self.queries: List[Query] = list(queries)
        for q in self.queries:
            self._check(q)

    @staticmethod
    def _check(query: Query) -> None:
        if not isinstance(query, (ReliabilityQuery, MaximizeQuery)):
            raise TypeError(
                f"expected ReliabilityQuery or MaximizeQuery, got {query!r}"
            )

    def add(self, query: Query) -> "Workload":
        """Append a query; returns self for chaining."""
        self._check(query)
        self.queries.append(query)
        return self

    @classmethod
    def reliability(
        cls,
        pairs: Sequence[Pair],
        estimator: str = "mc",
        samples: int = 1000,
        seed: Optional[int] = None,
    ) -> "Workload":
        """Workload of single-target reliability queries over ``pairs``."""
        return cls(
            ReliabilityQuery(
                s, target=t, estimator=estimator, samples=samples, seed=seed
            )
            for s, t in pairs
        )

    def __iter__(self) -> Iterator[Query]:
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kinds = {}
        for q in self.queries:
            kinds[type(q).__name__] = kinds.get(type(q).__name__, 0) + 1
        inner = ", ".join(f"{n} {k}" for k, n in sorted(kinds.items()))
        return f"Workload({inner})"
