"""The session: one compiled plan, shared worlds, batched execution.

A :class:`Session` binds a graph to the execution state every query over
that graph wants to share:

* the **compiled CSR plan** (:mod:`repro.engine.csr`) — paid once per
  graph version, reused by every query;
* a **world-batch cache** keyed ``(graph.version, Z, seed)`` — queries
  whose estimator admits shared worlds (see
  :mod:`repro.reliability.registry`) and whose ``(Z, seed)`` align are
  all answered inside the *same* sampled worlds, so an N-query workload
  pays one coin-flip pass instead of N;
* a **seeded RNG discipline** — a batch for ``(Z, seed)`` is always the
  worlds a fresh engine with that seed would sample, so session-batched
  results are bit-for-bit identical to one-off vectorized calls.

Mutating the graph bumps ``UncertainGraph.version``; the session notices
on the next query and evicts both the plan reference and every cached
world batch, so results never reflect a stale graph.

The session is also the facade for reliability *maximization*: it owns
the solver configuration (``r``, ``l``, ``h``, selection estimator,
paired evaluation sampler) and executes :class:`MaximizeQuery` objects
via :mod:`repro.api.maximize`.  The legacy
:class:`~repro.core.facade.ReliabilityMaximizer` is a thin shim over a
per-call session.
"""

from __future__ import annotations

import time
import warnings
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
    cast,
)

from ..analysis import sanitize
from ..graph import UncertainGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine import QueryPlan, WorldBatch
    from ..index import IndexStore
    from ..index.breaker import CircuitBreaker
from ..faults import FaultError, fault_point
from ..reliability import (
    ReliabilityEstimator,
    estimator_spec,
    make_estimator,
    resolve_selection_backend,
)
from ._engine import (
    HAVE_ENGINE as _HAVE_ENGINE,
    SelectionGainKernel,
    StoreError,
    batch_from_words,
    batch_reach_resume,
    batch_to_words,
    coin_base,
    compile_plan,
    extract_world_columns,
    extract_worlds,
    np,
    pair_hit_fractions,
    repair_batch,
    resolve_fuse_max_words,
    sample_worlds,
    scatter_world_columns,
    world_index_of,
)
from .delta import DeltaReport, GraphDelta
from .queries import MaximizeQuery, Pair, Query, ReliabilityQuery, Workload
from .results import (
    MaximizeResult,
    Provenance,
    ReliabilityResult,
    Timings,
)

Result = Union[ReliabilityResult, MaximizeResult]

#: Overlay edge: ``(u, v, probability)``.
ProbEdge = Tuple[int, int, float]

#: Paired-evaluation defaults shared with the legacy facade.
DEFAULT_EVALUATION_SAMPLES = 1000
DEFAULT_EVALUATION_SEED = 9_999


class Session:
    """Batched query execution over one uncertain graph.

    Parameters
    ----------
    graph:
        The graph every query in this session runs against.
    seed:
        Session seed: the default for queries that do not set their own,
        and the seed of the default selection estimator.
    estimator:
        Selection-loop sampler for :class:`MaximizeQuery` execution — a
        registry name or an estimator instance (default: ``"rss"`` at
        ``selection_samples``, the paper's converged configuration).
    selection_samples:
        Sample budget of the default selection estimator.
    evaluation_samples / evaluation_seed:
        Paired Monte Carlo evaluation of solutions: every method's gain
        is measured in the same worlds (fixed seed).
    r, l, h:
        Search-space parameters (Algorithm 4 / top-l paths / hop bound).
    max_cached_batches:
        Bound on the world-batch cache: at most this many distinct
        ``(Z, seed)`` batches are kept (FIFO eviction), so long-lived
        sessions serving heterogeneous workloads stay bounded in
        memory.
    max_cached_reach:
        Bound on the per-source reached-fixpoint cache (``0`` disables
        it): at most this many ``(n, W)`` reached matrices are kept
        across all ``(Z, seed)`` batches, FIFO-evicted by batch key.
        Cached fixpoints make repeat-source queries sweep-free and are
        what :meth:`apply_delta` resumes after a monotone edit instead
        of re-sweeping.  Purely a performance knob — cached fixpoints
        are bit-identical to fresh sweeps.
    fuse_max_words:
        Multi-source fusion threshold for batched pair sweeps: distinct
        sources are fused into frontier-gated multi-source kernel
        passes while the world-batch row is at most this many words
        (``None`` -> the measured
        :data:`repro.engine.batch.DEFAULT_FUSE_MAX_WORDS`, ``0``
        disables fusion).  Purely a performance knob — results are
        bit-for-bit identical on every dispatch path.
    store:
        Optional persistent index (:class:`repro.index.IndexStore`).
        World-batch lookup becomes a three-tier path — memory cache →
        store mmap → fresh sampling — and shared-world reliability
        queries consult the store's exact-match result cache before
        touching worlds at all; newly sampled batches and freshly
        computed values are persisted back.  Entries are keyed by the
        graph *content hash*, so a store outlives this process and a
        graph swap can never serve stale answers.  Purely a
        performance layer: store-backed answers are bit-for-bit
        identical to cold sampling.

    See Also
    --------
    repro.serve.AsyncSession : request-coalescing asyncio facade.
    docs/architecture.md : the full engine → session → serving data flow.

    Examples
    --------
    One session answers a whole workload against one compiled plan and
    one shared world batch:

    >>> from repro.graph import UncertainGraph
    >>> from repro.api import ReliabilityQuery, Session, Workload
    >>> g = UncertainGraph.from_edges([(0, 1, 0.9), (1, 2, 0.6)])
    >>> session = Session(g, seed=11)
    >>> r1, r2 = session.run(Workload([
    ...     ReliabilityQuery(0, target=2, samples=4000),
    ...     ReliabilityQuery(0, targets=(1, 2), samples=4000),
    ... ]))
    >>> (round(r1.value, 1), r1.provenance.shared_worlds)
    (0.5, True)
    >>> r2.by_target[2] == r1.value  # same worlds, same answer
    True

    Mutating the graph bumps its version; the next query recompiles:

    >>> g.add_edge(0, 2, 1.0)
    >>> session.reliability(0, target=2, samples=4000).value
    1.0
    """

    def __init__(
        self,
        graph: UncertainGraph,
        seed: int = 0,
        estimator: Optional[Union[str, ReliabilityEstimator]] = None,
        selection_samples: int = 250,
        evaluation_samples: int = DEFAULT_EVALUATION_SAMPLES,
        evaluation_seed: int = DEFAULT_EVALUATION_SEED,
        r: int = 100,
        l: int = 30,
        h: Optional[int] = None,
        max_cached_batches: int = 8,
        max_cached_reach: int = 128,
        fuse_max_words: Optional[int] = None,
        store: Optional["IndexStore"] = None,
        store_breaker: Optional["CircuitBreaker"] = None,
    ) -> None:
        if max_cached_batches < 1:
            raise ValueError("max_cached_batches must be positive")
        if max_cached_reach < 0:
            raise ValueError(
                "max_cached_reach must be >= 0 (0 disables reach caching)"
            )
        if store is not None and not _HAVE_ENGINE:
            raise RuntimeError(
                "a persistent index store requires the vectorized engine "
                "(numpy)"
            )
        self.graph = graph
        self.seed = seed
        self.store = store
        # Circuit breaker in front of the best-effort store wrappers: a
        # dead store stops costing a round-trip per request.  Attached
        # by default whenever a store is; pass an explicit breaker to
        # tune thresholds (or inject a test clock).
        self.store_breaker: Optional["CircuitBreaker"] = None
        if store is not None:
            if store_breaker is None:
                from ..index.breaker import CircuitBreaker
                store_breaker = CircuitBreaker()
            self.store_breaker = store_breaker
        if _HAVE_ENGINE:
            # Validate eagerly (like max_cached_batches) so a bad knob
            # fails at construction, not at the first grouped query;
            # None is kept as-is to track the engine default.
            resolve_fuse_max_words(fuse_max_words)
        self.fuse_max_words = fuse_max_words
        self.selection_samples = selection_samples
        self.evaluation_samples = evaluation_samples
        self.evaluation_seed = evaluation_seed
        self.r = r
        self.l = l
        self.h = h
        self.max_cached_batches = max_cached_batches
        self.max_cached_reach = max_cached_reach
        # Registry name of the default selection estimator, when known:
        # maximize queries overriding samples/seed rebuild through it.
        self.estimator_name: Optional[str] = None
        if estimator is None:
            self.estimator_name = "rss"
            estimator = make_estimator("rss", selection_samples, seed=seed)
        elif isinstance(estimator, str):
            self.estimator_name = estimator_spec(estimator).name
            estimator = make_estimator(estimator, selection_samples, seed=seed)
        self.estimator: ReliabilityEstimator = estimator

        self._version: Optional[int] = None
        self._plan: Optional["QueryPlan"] = None
        self._worlds: Dict[Tuple[int, int], Tuple["WorldBatch", float]] = {}
        # Per-(Z, seed) per-source reached fixpoints over the cached
        # batches — resumed (not recomputed) across monotone deltas.
        self._reach: Dict[Tuple[int, int], Dict[int, "np.ndarray"]] = {}
        # Sanitizer-mode race detector: sessions are single-threaded by
        # contract (AsyncSession serializes onto one worker thread).
        # The owner binds on first guarded use, not construction, so a
        # serving layer may build here and hand off (see
        # AsyncSession.__init__, which rebinds).
        self._affinity = sanitize.ThreadAffinity(
            f"Session(graph={graph.name!r})"
        )

    # ------------------------------------------------------------------
    # cache management
    # ------------------------------------------------------------------
    @property
    def engine_enabled(self) -> bool:
        """Whether the vectorized engine backs this session."""
        return _HAVE_ENGINE

    def invalidate(self) -> None:
        """Drop the compiled plan and every cached world batch.

        Persistent-store entries are *not* dropped: they are keyed by
        graph content hash, so a swapped-in graph simply reads and
        writes its own namespace while the old graph's entries stay
        valid for whoever serves that graph next.
        """
        self._version = None
        self._plan = None
        self._worlds.clear()
        self._reach.clear()

    def store_stats(self) -> Optional[dict]:
        """Persistent-store catalog totals + hit/miss counters, or ``None``.

        JSON-ready (what ``GET /healthz`` reports under ``"store"``).
        Best-effort like every other store interaction: a broken
        catalog degrades to the in-process counters plus an ``"error"``
        field instead of failing the health check.
        """
        store = self.store
        if store is None:
            return None
        try:
            payload = store.stats().as_dict()
        except StoreError as error:
            payload = {
                "error": str(error),
                "counters": store.counters.as_dict(),
            }
        if self.store_breaker is not None:
            payload["breaker"] = self.store_breaker.stats()
        return payload

    # ------------------------------------------------------------------
    # best-effort store access
    # ------------------------------------------------------------------
    # The documented contract is "persistence is an optimization;
    # serving must not fail".  IndexStore raises StoreError for every
    # failure mode (lock timeouts, sqlite contention like 'database is
    # locked' under multi-process result writes, a closed store), and
    # these wrappers absorb it: reads degrade to misses, writes are
    # dropped, and save_failures records that it happened.  The circuit
    # breaker turns *consecutive* failures into skipped calls (same
    # degraded semantics, none of the round-trip latency) until a
    # half-open probe succeeds.  Each wrapper carries a fault seam so
    # chaos tests drive these paths through the registry instead of
    # monkeypatching.

    def _store_allowed(self) -> bool:
        """Whether the breaker admits a store call right now."""
        breaker = self.store_breaker
        return breaker is None or breaker.allow()

    def _store_ok(self) -> None:
        breaker = self.store_breaker
        if breaker is not None:
            breaker.record_success()

    def _store_failed(self) -> None:
        breaker = self.store_breaker
        if breaker is not None:
            breaker.record_failure()

    def _store_get_results(
        self, estimator: str, pairs: Sequence[Pair], samples: int, seed: int
    ) -> Dict[Pair, float]:
        """Result-cache read; a store failure is an ordinary miss."""
        store = self.store
        assert store is not None  # callers gate on an attached store
        if not self._store_allowed():
            return {}
        try:
            fault_point("session.store.get_results", StoreError)
            found = store.get_results(
                self.graph_hash(), estimator, pairs, samples, seed
            )
        except StoreError:
            store.counters.save_failures += 1
            self._store_failed()
            return {}
        self._store_ok()
        return found

    def _store_put_results(
        self, estimator: str, values: Dict[Pair, float], samples: int,
        seed: int,
    ) -> None:
        """Result-cache write-back; a store failure drops the entries."""
        store = self.store
        assert store is not None  # callers gate on an attached store
        if not self._store_allowed():
            return
        try:
            fault_point("session.store.put_results", StoreError)
            store.put_results(
                self.graph_hash(), estimator, values, samples, seed
            )
        except StoreError:
            store.counters.save_failures += 1
            self._store_failed()
            return
        self._store_ok()

    def _sync_version(self) -> None:
        if self._version != self.graph.version:
            self.invalidate()
            self._version = self.graph.version

    def plan(self) -> Tuple["QueryPlan", float]:
        """``(compiled plan, compile_seconds)`` for the current graph.

        ``compile_seconds`` is 0.0 on a cache hit — only the query that
        first touches a graph version pays the compilation.
        """
        if not _HAVE_ENGINE:
            raise RuntimeError("the vectorized engine requires numpy")
        self._affinity.check("Session.plan")
        self._sync_version()
        if self._plan is not None:
            return self._plan, 0.0
        start = time.perf_counter()
        self._plan = compile_plan(self.graph)
        return self._plan, time.perf_counter() - start

    def graph_hash(self) -> str:
        """Content hash of the served graph — the persistent store key.

        Unlike ``graph.version`` (an in-process mutation counter two
        distinct graph objects can collide on), the content hash
        identifies the graph by its nodes, edges and probability bits,
        so index entries stay valid across restarts and can never be
        aliased by a hot-swap.  Cached per graph version on the graph
        itself.
        """
        return self.graph.content_hash()

    def world_batch(
        self, samples: int, seed: int
    ) -> Tuple["WorldBatch", float, str]:
        """``(batch, sample_seconds, source)`` for ``(Z, seed)``.

        ``source`` names the tier that answered: ``"memory"`` (session
        cache), ``"store"`` (memory-mapped from the persistent index),
        or ``"sampled"`` (fresh coin flips — persisted back to the
        store when one is attached).  Every tier yields bit-for-bit the
        batch a fresh engine seeded ``seed`` would sample — the
        property the parity tests pin down.
        """
        self._affinity.check("Session.world_batch")
        plan, _ = self.plan()
        key = (samples, seed)
        cached = self._worlds.get(key)
        if cached is not None:
            return cached[0], 0.0, "memory"
        store = self.store
        if store is not None and self._store_allowed():
            start = time.perf_counter()
            try:
                fault_point("session.store.load_batch", StoreError)
                words = store.load_batch(
                    self.graph_hash(), samples, seed,
                    expected_edges=plan.num_edges,
                )
            except StoreError:
                # A broken catalog reads as a miss: fall through to
                # fresh sampling.
                store.counters.save_failures += 1
                self._store_failed()
                words = None
            else:
                self._store_ok()
            if words is not None:
                batch = batch_from_words(words, samples)
                elapsed = time.perf_counter() - start
                self._remember_batch(key, batch, elapsed)
                return batch, elapsed, "store"
        start = time.perf_counter()
        batch = sample_worlds(plan, samples, np.random.default_rng(seed))
        elapsed = time.perf_counter() - start
        if store is not None and self._store_allowed():
            try:
                fault_point("session.store.save_batch", StoreError)
                store.save_batch(
                    self.graph_hash(), samples, seed, batch_to_words(batch)
                )
            except StoreError:
                # Persistence is an optimization; serving must not fail
                # because another writer holds the store lock.
                store.counters.save_failures += 1
                self._store_failed()
            else:
                self._store_ok()
        self._remember_batch(key, batch, elapsed)
        return batch, elapsed, "sampled"

    def _remember_batch(
        self, key: Tuple[int, int], batch: "WorldBatch", elapsed: float
    ) -> None:
        """Insert a batch into the bounded in-memory cache.

        Cached batches are shared by every later query with the same
        ``(Z, seed)`` — their arrays are frozen read-only so an aliased
        in-place write fails fast instead of silently corrupting every
        sharer (the mmap store tier is read-only already; this closes
        the memory tier).
        """
        sanitize.freeze(batch.alive)
        sanitize.freeze(batch.valid)
        while len(self._worlds) >= self.max_cached_batches:
            # FIFO eviction keeps long-lived heterogeneous sessions
            # bounded; dict preserves insertion order.
            self._worlds.pop(next(iter(self._worlds)))
        self._worlds[key] = (batch, elapsed)

    def _reach_for(
        self, samples: int, seed: int
    ) -> Optional[Dict[int, "np.ndarray"]]:
        """The reach-fixpoint cache for ``(Z, seed)``, or ``None``.

        A cached fixpoint stays valid across world-batch eviction —
        every batch tier rebuilds ``(Z, seed)`` bit-identically — so
        reach entries are bounded separately
        (:attr:`max_cached_reach`), FIFO by batch key.
        """
        if self.max_cached_reach <= 0:
            return None
        key = (samples, seed)
        states = self._reach.get(key)
        if states is None:
            states = self._reach[key] = {}
        return states

    def _trim_reach(self) -> None:
        """Enforce the reach-cache bound (whole batch keys at a time)."""
        total = sum(len(states) for states in self._reach.values())
        while total > self.max_cached_reach and self._reach:
            key = next(iter(self._reach))
            total -= len(self._reach.pop(key))

    # ------------------------------------------------------------------
    # streaming updates
    # ------------------------------------------------------------------
    def apply_delta(self, delta: GraphDelta) -> DeltaReport:
        """Apply edge edits to the live graph, repairing caches in place.

        The delta mutates :attr:`graph` (deletes before upserts), then
        every cached world batch is *repaired* instead of evicted:
        untouched edges keep their rows (bit-identical under the keyed
        coin contract), edited edges get exactly their rows re-flipped
        (:func:`repro.engine.kernel.repair_batch`), and cached
        reached fixpoints are resumed from the edited endpoints when
        the edit is monotone for them — dropped (to recompute lazily)
        when it is not.  With a store attached, repaired batches
        persist back under the graph's new content hash.

        Falls back to plain eviction when there is nothing worth
        repairing (no engine, no cached batches) or when the
        ``session.delta.apply`` fault seam fires — degradation changes
        cost, never answers.  Either way, post-delta results are
        bit-for-bit what a cold session on the edited graph computes
        (``tests/test_delta_parity.py`` pins this).
        """
        self._affinity.check("Session.apply_delta")
        self._sync_version()
        start = time.perf_counter()
        old_plan = self._plan
        old_worlds = dict(self._worlds)
        old_reach = {key: dict(states) for key, states in self._reach.items()}
        delta.apply_to(self.graph)  # validates first; all-or-nothing
        if _HAVE_ENGINE and old_plan is not None and old_worlds:
            try:
                fault_point("session.delta.apply", FaultError)
                return self._repair_after_delta(
                    delta, old_plan, old_worlds, old_reach, start
                )
            except FaultError:
                # Chaos path: degrade to eviction — slower, never wrong.
                pass
        self.invalidate()
        self._sync_version()
        return DeltaReport(
            strategy="evict",
            num_edits=delta.num_edits,
            version=self.graph.version,
            content_hash=self.graph_hash(),
            seconds=time.perf_counter() - start,
        )

    def _repair_after_delta(
        self,
        delta: GraphDelta,
        old_plan: "QueryPlan",
        old_worlds: Dict[Tuple[int, int], Tuple["WorldBatch", float]],
        old_reach: Dict[Tuple[int, int], Dict[int, "np.ndarray"]],
        start: float,
    ) -> DeltaReport:
        """Repair strategy of :meth:`apply_delta` (engine + caches live)."""
        new_plan = compile_plan(self.graph)
        self._version = self.graph.version
        self._plan = new_plan
        self._worlds = {}
        self._reach = {}
        repaired = resumed = dropped = persisted = 0
        for key, states in old_reach.items():
            if key not in old_worlds:
                # No batch to repair against (it was FIFO-evicted);
                # these fixpoints recompute lazily.
                dropped += len(states)
        for (samples, seed), (batch, elapsed) in old_worlds.items():
            # The batch's key root is recomputable from the seed alone:
            # sampling consumed exactly one uint64 (see coin_base).
            base = coin_base(np.random.default_rng(seed))
            new_batch, changes = repair_batch(new_plan, old_plan, batch, base)
            repaired += 1
            kept, n_resumed, n_dropped = self._repair_reach(
                new_plan, new_batch, changes,
                old_reach.get((samples, seed), {}),
            )
            resumed += n_resumed
            dropped += n_dropped
            self._remember_batch((samples, seed), new_batch, elapsed)
            if kept:
                self._reach[(samples, seed)] = kept
            if self.store is not None and self._store_allowed():
                # Rekey under the post-delta content hash so the next
                # restart (or shard) warm-starts on the edited graph.
                try:
                    fault_point("session.store.save_batch", StoreError)
                    self.store.save_batch(
                        self.graph_hash(), samples, seed,
                        batch_to_words(new_batch),
                    )
                except StoreError:
                    self.store.counters.save_failures += 1
                    self._store_failed()
                else:
                    self._store_ok()
                    persisted += 1
        self._trim_reach()
        return DeltaReport(
            strategy="repair",
            num_edits=delta.num_edits,
            version=self.graph.version,
            content_hash=self.graph_hash(),
            repaired_batches=repaired,
            resumed_states=resumed,
            dropped_states=dropped,
            persisted_batches=persisted,
            seconds=time.perf_counter() - start,
        )

    def _repair_reach(
        self,
        plan: "QueryPlan",
        batch: "WorldBatch",
        changes: Sequence[Any],
        states: Dict[int, "np.ndarray"],
    ) -> Tuple[Dict[int, "np.ndarray"], int, int]:
        """Carry reached fixpoints across a repaired batch.

        For every cached per-source fixpoint: coin-row *removals* keep
        the state exact iff the source never reached the edge's tail
        (either endpoint, undirected) in a removed world — a removed
        world-bit only matters when the edge was traversable from the
        reached set, so a clean overlap check proves the old fixpoint
        is the new one.  Dirty states are dropped (they recompute
        lazily).  Coin-row *additions* are monotone: seed the far
        endpoint with the worlds the near one already reaches, then one
        :func:`~repro.engine.kernel.batch_reach_resume` from the
        seeded endpoints converges to the exact new fixpoint.  The
        resume runs over a world-compacted sub-batch
        (:func:`~repro.engine.kernel.extract_worlds`) holding only the
        columns where some edit flipped a coin on — worlds are
        column-independent, so the narrow sweep is bit-exact and costs
        ``W'/W`` of a full-width one.
        """
        if not states:
            return {}, 0, 0
        removals = [c for c in changes if bool(np.any(c.removed))]
        additions = [c for c in changes if bool(np.any(c.added))]
        kept: Dict[int, "np.ndarray"] = {}
        resumed = dropped = 0
        num_nodes = plan.num_nodes
        # Worlds are column-independent, so only the worlds where some
        # edited edge gained a coin can grow any fixpoint.  Resume over
        # a sub-batch of exactly those columns (built lazily, shared by
        # every state) at W'/W of the full-width sweep cost.
        gain_index: Optional["np.ndarray"] = None
        compact_batch: Optional["WorldBatch"] = None
        if additions:
            gain_mask = additions[0].added.copy()
            for change in additions[1:]:
                gain_mask |= change.added
            gain_index = world_index_of(gain_mask)
        for src, state in states.items():
            if state.shape[0] < num_nodes:
                # New endpoints interned behind the old rows; existing
                # dense indices are stable, so zero-pad below.
                state = np.vstack([
                    state,
                    np.zeros(
                        (num_nodes - state.shape[0], state.shape[1]),
                        dtype=np.uint64,
                    ),
                ])
            dirty = False
            for change in removals:
                u_idx = plan.index_of[change.u]
                v_idx = plan.index_of[change.v]
                touch = state[u_idx]
                if not plan.directed:
                    touch = touch | state[v_idx]
                if bool(np.any(touch & change.removed)):
                    dirty = True
                    break
            if dirty:
                dropped += 1
                continue
            frontier: List[int] = []
            for change in additions:
                u_idx = plan.index_of[change.u]
                v_idx = plan.index_of[change.v]
                gain = state[u_idx] & change.added & ~state[v_idx]
                if bool(np.any(gain)):
                    state[v_idx] |= gain
                    frontier.append(v_idx)
                if not plan.directed:
                    gain = state[v_idx] & change.added & ~state[u_idx]
                    if bool(np.any(gain)):
                        state[u_idx] |= gain
                        frontier.append(u_idx)
            if frontier and gain_index is not None and gain_index.size:
                if compact_batch is None:
                    compact_batch = extract_worlds(batch, gain_index)
                narrow = extract_world_columns(state, gain_index)
                seeded = narrow.copy()
                batch_reach_resume(plan, compact_batch, narrow, frontier)
                # Scatter back only the rows the resume actually grew;
                # seeds were applied full-width above already.
                grew = np.flatnonzero(np.any(narrow != seeded, axis=1))
                if grew.size:
                    state[grew] = scatter_world_columns(
                        state[grew], narrow[grew], gain_index
                    )
            kept[src] = state
            resumed += 1
        return kept, resumed, dropped

    def selection_kernel(
        self, estimator: ReliabilityEstimator
    ) -> Optional["SelectionGainKernel"]:
        """Batched gain kernel over the session's cached plan and worlds.

        Returns a :class:`~repro.engine.selection.SelectionGainKernel`
        when ``estimator`` advertises a shared-world selection backend
        (every vectorized registry estimator does), built on the
        session's compiled plan — and, for the plain-batch backends
        (``mc``/``lazy``), on the session's cached ``(Z, seed)`` world
        batch, so consecutive maximize queries with the same sampler
        configuration skip both compilation and coin flips.  Backends
        with a query-conditioned base batch (per-stratum ``rss``,
        per-block ``adaptive``) reuse the cached plan and build their
        batch per query through the backend's ``make_batch`` factory.
        ``None`` when the estimator does not qualify (scalar paths) or
        numpy is absent; selection loops then run per-candidate.
        """
        if not _HAVE_ENGINE:
            return None
        backend = resolve_selection_backend(estimator)
        if backend is None:
            return None
        samples, seed = backend
        plan, _ = self.plan()
        factory = getattr(backend, "make_batch", None)
        if factory is not None:
            return SelectionGainKernel(
                self.graph, samples, seed=seed, plan=plan,
                batch_factory=factory,
                fuse_max_words=self.fuse_max_words,
            )
        batch, _, _ = self.world_batch(samples, seed)
        return SelectionGainKernel(
            self.graph, samples, seed=seed, plan=plan, batch=batch,
            fuse_max_words=self.fuse_max_words,
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, workload: Union[Workload, Sequence[Query]]) -> List[Result]:
        """Execute a workload; results align with query order.

        Reliability queries are grouped by ``(estimator, Z, seed)``:
        world-sharing groups are answered against one cached batch with
        one batch-BFS per distinct source; other estimators run
        per-query with a fresh, deterministically-seeded sampler.
        Maximize queries are batched too: their paired base evaluations
        are answered in *one* shared-batch pass over all their pairs
        before the queries execute in submission order, and every
        selection loop whose estimator admits shared worlds runs on the
        session's cached plan and world batches.
        """
        if not isinstance(workload, Workload):
            workload = Workload(workload)
        self._affinity.check("Session.run")
        self._sync_version()
        results: List[Optional[Result]] = [None] * len(workload)

        groups: Dict[Tuple[str, int, int], List[Tuple[int, ReliabilityQuery]]] = {}
        maximize_members: List[Tuple[int, MaximizeQuery]] = []
        for index, query in enumerate(workload):
            if isinstance(query, MaximizeQuery):
                maximize_members.append((index, query))
                continue
            seed = query.seed if query.seed is not None else self.seed
            spec = estimator_spec(query.estimator)
            groups.setdefault((spec.name, query.samples, seed), []).append(
                (index, query)
            )
        if maximize_members:
            self._run_maximize_batch(maximize_members, results)

        for (name, samples, seed), members in groups.items():
            spec = estimator_spec(name)
            if _HAVE_ENGINE and spec.shares_worlds:
                self._run_shared(name, samples, seed, members, results)
            else:
                if not spec.fixed_samples and len(members) > 1:
                    warnings.warn(
                        f"estimator {name!r} chooses Z adaptively and cannot "
                        f"share a fixed-Z world batch; running "
                        f"{len(members)} queries individually",
                        stacklevel=2,
                    )
                self._run_individual(name, samples, seed, members, results)
        # Every index was filled by exactly one of the dispatchers above.
        return cast(List[Result], results)

    def _run_maximize_batch(
        self,
        members: List[Tuple[int, MaximizeQuery]],
        results: List[Optional[Result]],
    ) -> None:
        """Execute a workload's maximize queries with shared evaluation.

        The paired *base* evaluation of every query — the reliability of
        its ``(source, target)`` pair before any edges are added — is
        answered in one shared-batch ``evaluate_pairs`` call (one sweep
        group instead of one per query), bit-for-bit identical to what
        each query's standalone execution would compute from the same
        cached batch.  Selection then runs per query in submission
        order, reusing the session's compiled plan and world-batch
        cache (see :meth:`selection_kernel`).
        """
        from .maximize import execute_maximize  # local: keep import light

        base_values = self.evaluate_pairs(
            [(query.source, query.target) for _, query in members]
        )
        for (index, query), base in zip(members, base_values, strict=True):
            results[index] = execute_maximize(self, query, base_value=base)

    def _run_shared(
        self,
        name: str,
        samples: int,
        seed: int,
        members: List[Tuple[int, ReliabilityQuery]],
        results: List[Optional[Result]],
    ) -> None:
        """Answer a world-sharing group against one cached batch.

        All pairs of all member queries go through one
        ``pair_hit_fractions`` call, which runs one batch BFS per
        distinct *source* — multi-target queries and repeated sources
        are free.  Timings on each result are the group's batched
        totals, not per-query costs.

        With a persistent store attached, the group consults the
        exact-match result cache first: pairs already answered for this
        graph content under ``(estimator, Z, seed)`` skip the sweep
        entirely (a fully-cached group never even materializes a world
        batch), and freshly computed values are written back.  Cached
        values are bit-for-bit what the sweep would produce — the key
        pins the deterministic computation completely.
        """
        all_pairs: List[Pair] = []
        for _, query in members:
            all_pairs.extend(query.pairs)

        cached_values: Dict[Pair, float] = {}
        start = time.perf_counter()
        if self.store is not None:
            cached_values = self._store_get_results(
                name, all_pairs, samples, seed
            )
        missing = [
            pair for pair in dict.fromkeys(all_pairs)
            if pair not in cached_values
        ]
        lookup_s = time.perf_counter() - start

        compile_s = sample_s = 0.0
        world_source: Optional[str] = None
        values: Dict[Pair, float] = dict(cached_values)
        if missing:
            plan, compile_s = self.plan()
            batch, sample_s, world_source = self.world_batch(samples, seed)
            start = time.perf_counter()
            fresh = pair_hit_fractions(
                plan, batch, missing, samples,
                fuse_max_words=self.fuse_max_words,
                reach_cache=self._reach_for(samples, seed),
            )
            self._trim_reach()
            solve_s = lookup_s + time.perf_counter() - start
            values.update(fresh)
            if self.store is not None:
                self._store_put_results(name, fresh, samples, seed)
        else:
            solve_s = lookup_s

        timings = Timings(
            compile_seconds=compile_s,
            sample_seconds=sample_s,
            solve_seconds=solve_s,
        )
        batch_was_cached = world_source in ("memory", "store")
        for index, query in members:
            if self.store is not None:
                hits = sum(1 for pair in query.pairs if pair in cached_values)
                cache_hits: Optional[int] = hits
                cache_misses: Optional[int] = len(query.pairs) - hits
            else:
                cache_hits = cache_misses = None
            results[index] = ReliabilityResult(
                query=query,
                values=tuple(values[pair] for pair in query.pairs),
                provenance=Provenance(
                    estimator=name,
                    samples=samples,
                    seed=seed,
                    backend="engine",
                    shared_worlds=(
                        batch_was_cached
                        or len(members) > 1
                        or world_source is None
                    ),
                    timings=timings,
                    world_source=world_source,
                    cache_hits=cache_hits,
                    cache_misses=cache_misses,
                ),
            )

    def _run_individual(
        self,
        name: str,
        samples: int,
        seed: int,
        members: List[Tuple[int, ReliabilityQuery]],
        results: List[Optional[Result]],
    ) -> None:
        """Per-query path: fresh deterministic sampler per query.

        Each query gets its own estimator seeded ``seed``, so results
        equal a one-off call with the same configuration regardless of
        the query's position in the workload.
        """
        for index, query in members:
            estimator = make_estimator(name, samples, seed=seed)
            backend = (
                "engine" if getattr(estimator, "vectorized", False) else "scalar"
            )
            start = time.perf_counter()
            values = tuple(
                estimator.reliability(self.graph, s, t)
                for s, t in query.pairs
            )
            solve_s = time.perf_counter() - start
            results[index] = ReliabilityResult(
                query=query,
                values=values,
                provenance=Provenance(
                    estimator=name,
                    samples=samples,
                    seed=seed,
                    backend=backend,
                    shared_worlds=False,
                    timings=Timings(solve_seconds=solve_s),
                ),
            )

    # ------------------------------------------------------------------
    # convenience entry points
    # ------------------------------------------------------------------
    def reliability(
        self,
        source: int,
        target: Optional[int] = None,
        targets: Optional[Sequence[int]] = None,
        estimator: str = "mc",
        samples: int = 1000,
        seed: Optional[int] = None,
    ) -> ReliabilityResult:
        """One-call reliability estimate through the session caches."""
        query = ReliabilityQuery(
            source,
            target=target,
            targets=tuple(targets) if targets is not None else None,
            estimator=estimator,
            samples=samples,
            seed=seed,
        )
        return self.run(Workload([query]))[0]

    def maximize(self, query: MaximizeQuery) -> MaximizeResult:
        """Execute one maximize query (see :mod:`repro.api.maximize`)."""
        from .maximize import execute_maximize  # local: keep import light

        self._affinity.check("Session.maximize")
        self._sync_version()
        return execute_maximize(self, query)

    # ------------------------------------------------------------------
    # paired evaluation (used by maximize execution)
    # ------------------------------------------------------------------
    def evaluate_pairs(
        self,
        pairs: Sequence[Pair],
        extra_edges: Optional[Sequence[ProbEdge]] = None,
        samples: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> List[float]:
        """Paired-seed MC evaluation of pairs, batched where possible.

        Without an overlay the pairs are answered from the session's
        shared evaluation batch; with candidate ``extra_edges`` a fresh
        paired estimator runs over the merged plan.  Both produce the
        exact values a standalone ``MonteCarloEstimator`` with the same
        ``(Z, seed)`` would, so gains stay comparable across methods,
        sessions and the legacy facade.
        """
        self._affinity.check("Session.evaluate_pairs")
        samples = samples if samples is not None else self.evaluation_samples
        seed = seed if seed is not None else self.evaluation_seed
        pairs = list(pairs)
        if not pairs:
            return []
        if _HAVE_ENGINE and not extra_edges:
            # pair_hit_fractions implements the same unknown-endpoint /
            # s==t semantics as the scalar estimators, so every
            # overlay-free evaluation reuses the session's cached batch.
            # Overlay-free evaluations share the "mc" result-cache
            # namespace with mc reliability queries: both are the same
            # deterministic hit-fraction over the same (Z, seed) batch.
            self._sync_version()
            values: Dict[Pair, float] = {}
            if self.store is not None:
                values = self._store_get_results("mc", pairs, samples, seed)
            missing = [
                pair for pair in dict.fromkeys(pairs) if pair not in values
            ]
            if missing:
                plan, _ = self.plan()
                batch, _, _ = self.world_batch(samples, seed)
                fresh = pair_hit_fractions(
                    plan, batch, missing, samples,
                    fuse_max_words=self.fuse_max_words,
                    reach_cache=self._reach_for(samples, seed),
                )
                self._trim_reach()
                values.update(fresh)
                if self.store is not None:
                    self._store_put_results("mc", fresh, samples, seed)
            return [values[pair] for pair in pairs]
        estimator = make_estimator("mc", samples, seed=seed)
        return estimator.reliability_many(
            self.graph, pairs, list(extra_edges) if extra_edges else None
        )

    def evaluate(
        self,
        source: int,
        target: int,
        extra_edges: Optional[Sequence[ProbEdge]] = None,
        samples: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> float:
        """Reliability of one pair under the paired evaluation sampler."""
        if source == target:
            return 1.0
        return self.evaluate_pairs(
            [(source, target)], extra_edges, samples=samples, seed=seed
        )[0]
