"""Typed optional-dependency seam for the vectorized engine.

The session layer runs with or without numpy: every engine-backed path
is gated on :data:`HAVE_ENGINE` and falls back to the scalar estimators
when the import fails.  Historically each consumer carried its own
``try/except ImportError`` ladder with a ``type: ignore`` per rebound
name; this module is the one typed seam replacing them.

The trick: mypy analyzes only the ``TYPE_CHECKING`` branch, which
imports the real, fully typed names.  At runtime the ``else`` branch
runs, substituting stubs that raise a clear ``RuntimeError`` when numpy
is absent — callers that respect :data:`HAVE_ENGINE` never reach them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

HAVE_ENGINE: bool

if TYPE_CHECKING:  # pragma: no cover - mypy-facing branch
    import numpy as np
    from ..engine import (
        SelectionGainKernel,
        batch_from_words,
        batch_reach_resume,
        batch_to_words,
        coin_base,
        compile_plan,
        extract_world_columns,
        extract_worlds,
        pair_hit_fractions,
        repair_batch,
        resolve_fuse_max_words,
        sample_worlds,
        scatter_world_columns,
        world_index_of,
    )
    from ..index.store import StoreError
else:
    def _missing(*_args: Any, **_kwargs: Any) -> Any:
        raise RuntimeError("the vectorized engine requires numpy")

    try:
        import numpy as np

        from ..engine import (
            SelectionGainKernel,
            batch_from_words,
            batch_reach_resume,
            batch_to_words,
            coin_base,
            compile_plan,
            extract_world_columns,
            extract_worlds,
            pair_hit_fractions,
            repair_batch,
            resolve_fuse_max_words,
            sample_worlds,
            scatter_world_columns,
            world_index_of,
        )
        from ..index.store import StoreError

        HAVE_ENGINE = True
    except ImportError:  # pragma: no cover - numpy-less fallback
        HAVE_ENGINE = False
        np = None

        class StoreError(Exception):
            """Placeholder: the store cannot exist without numpy."""

        compile_plan = _missing
        pair_hit_fractions = _missing
        sample_worlds = _missing
        batch_from_words = _missing
        batch_reach_resume = _missing
        batch_to_words = _missing
        coin_base = _missing
        repair_batch = _missing
        SelectionGainKernel = _missing
        resolve_fuse_max_words = _missing
        extract_world_columns = _missing
        extract_worlds = _missing
        scatter_world_columns = _missing
        world_index_of = _missing

__all__ = [
    "HAVE_ENGINE",
    "SelectionGainKernel",
    "StoreError",
    "batch_from_words",
    "batch_reach_resume",
    "batch_to_words",
    "coin_base",
    "compile_plan",
    "extract_world_columns",
    "extract_worlds",
    "np",
    "pair_hit_fractions",
    "repair_batch",
    "resolve_fuse_max_words",
    "sample_worlds",
    "scatter_world_columns",
    "world_index_of",
]
