"""Graph deltas: declarative edge edits a live session can absorb.

A :class:`GraphDelta` describes a batch of edge edits — probability
changes, insertions, deletions — as plain data, so the same object can
drive an in-process :meth:`repro.api.Session.apply_delta`, cross the
shard-pool IPC boundary (:meth:`repro.serve.ShardSupervisor.apply_delta`)
and arrive over HTTP as a ``PATCH /edges`` body.  Applying a delta
through the session *repairs* cached state (world batches, reached
fixpoints) instead of evicting it; the :class:`DeltaReport` it returns
says which strategy ran and what survived.

>>> from repro.api import GraphDelta
>>> delta = GraphDelta(upserts=((0, 1, 0.9), (3, 4, 0.5)), deletes=((1, 2),))
>>> delta.num_edits
3
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..graph import UncertainGraph

#: Edge edit: ``(u, v, probability)``.
ProbEdge = Tuple[int, int, float]


@dataclass(frozen=True)
class GraphDelta:
    """A batch of edge edits to apply atomically to one graph.

    Attributes
    ----------
    upserts:
        ``(u, v, p)`` triples — set edge ``(u, v)``'s probability to
        ``p``, inserting the edge (and any unknown endpoints) when
        absent.  Matches :meth:`UncertainGraph.add_edge` semantics.
    deletes:
        ``(u, v)`` pairs — remove the edge.  Deleting an absent edge is
        an error (:class:`KeyError`), surfaced by :meth:`validate`
        before anything mutates.

    Deletes apply before upserts, so a delta may delete and re-insert
    the same edge (the keyed coin contract then restores that edge's
    exact coin rows — see :func:`repro.engine.kernel.sample_worlds`).
    """

    upserts: Tuple[ProbEdge, ...] = ()
    deletes: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "upserts",
            tuple((int(u), int(v), float(p)) for u, v, p in self.upserts),
        )
        object.__setattr__(
            self, "deletes",
            tuple((int(u), int(v)) for u, v in self.deletes),
        )
        for u, v, p in self.upserts:
            if u == v:
                raise ValueError(f"self-loop edit ({u}, {v}) is not allowed")
            if not 0.0 <= p <= 1.0:
                raise ValueError(
                    f"edge ({u}, {v}): probability {p} outside [0, 1]"
                )
        for u, v in self.deletes:
            if u == v:
                raise ValueError(f"self-loop edit ({u}, {v}) is not allowed")

    @property
    def num_edits(self) -> int:
        """Total edit count (upserts plus deletes)."""
        return len(self.upserts) + len(self.deletes)

    def validate(self, graph: UncertainGraph) -> None:
        """Raise before mutation if the delta cannot apply to ``graph``.

        Deletes must name existing edges.  Checking up front keeps
        :meth:`apply_to` all-or-nothing: a bad delta leaves the graph
        untouched instead of half-applied.
        """
        for u, v in self.deletes:
            if not graph.has_edge(u, v):
                raise KeyError(f"edge ({u}, {v}) not in graph")

    def apply_to(self, graph: UncertainGraph) -> None:
        """Mutate ``graph`` in place: deletes first, then upserts."""
        self.validate(graph)
        for u, v in self.deletes:
            graph.remove_edge(u, v)
        for u, v, p in self.upserts:
            graph.add_edge(u, v, p)


@dataclass(frozen=True)
class DeltaReport:
    """What :meth:`repro.api.Session.apply_delta` did with a delta.

    Attributes
    ----------
    strategy:
        ``"repair"`` when cached world batches were patched in place,
        ``"evict"`` when the session fell back to dropping caches (no
        engine, nothing cached, or the ``session.delta.apply`` fault
        seam fired).  Both strategies produce bit-identical answers to
        a cold session on the post-delta graph; only the cost differs.
    num_edits:
        Edit count of the applied delta.
    version / content_hash:
        The graph's post-delta version counter and content hash (the
        persistent store rekeys under the new hash).
    repaired_batches:
        Cached ``(Z, seed)`` world batches patched via
        :func:`repro.engine.kernel.repair_batch`.
    resumed_states / dropped_states:
        Cached per-source reached fixpoints carried forward via
        monotone sweep resumption vs discarded as potentially dirty
        (they recompute lazily on next use).
    persisted_batches:
        Repaired batches written back to the persistent store under the
        new content hash (0 without a store, best-effort like every
        store interaction).
    seconds:
        Wall-clock spent applying the delta, repair included.
    """

    strategy: str
    num_edits: int
    version: int
    content_hash: str
    repaired_batches: int = 0
    resumed_states: int = 0
    dropped_states: int = 0
    persisted_batches: int = 0
    seconds: float = 0.0

    def as_dict(self) -> dict:
        """JSON-ready payload (what ``PATCH /edges`` responds with)."""
        return {
            "strategy": self.strategy,
            "num_edits": self.num_edits,
            "version": self.version,
            "content_hash": self.content_hash,
            "repaired_batches": self.repaired_batches,
            "resumed_states": self.resumed_states,
            "dropped_states": self.dropped_states,
            "persisted_batches": self.persisted_batches,
            "seconds": self.seconds,
        }


__all__ = ["GraphDelta", "DeltaReport", "ProbEdge"]
