"""Reusable experiment drivers behind the per-table benchmarks.

Each driver mirrors one experimental protocol from §8: run a method set
over a query workload, average reliability gain / time / memory, and
return rows shaped like the corresponding paper table.  Benchmarks and
examples call these; keeping them in the library makes every number in
EXPERIMENTS.md reproducible from a plain Python session too.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..graph import UncertainGraph
from ..reliability import ReliabilityEstimator, make_estimator
from ..api import MaximizeQuery, Session
from ..core import (
    MultiSourceTargetMaximizer,
    Solution,
    eliminate_search_space,
)
from ..baselines import esssp_selection, ima_selection, eigenvalue_selection
from ..baselines.common import (
    NewEdgeProbability,
    ProbEdge,
    selection_kernel_for,
)
from ..graph import fixed_new_edge_probability
from .metrics import measure
from .harness import MethodStats

Pair = Tuple[int, int]
EstimatorFactory = Callable[[int], ReliabilityEstimator]
"""``factory(seed) -> estimator`` — fresh sampler per method run."""


def estimator_factory(name: str, num_samples: int) -> EstimatorFactory:
    """Registry-backed factory: fresh ``name`` sampler per seed."""
    return lambda seed: make_estimator(name, num_samples, seed=seed)


def default_estimator_factory(num_samples: int = 250) -> EstimatorFactory:
    """RSS factory used across experiments (the paper's converged Z)."""
    return estimator_factory("rss", num_samples)


def mc_estimator_factory(num_samples: int = 500) -> EstimatorFactory:
    """Plain MC factory for the sampler-comparison tables."""
    return estimator_factory("mc", num_samples)


@dataclass
class SingleStProtocol:
    """Parameters shared by the single-source-target experiments."""

    k: int = 10
    zeta: float = 0.5
    r: int = 100
    l: int = 30
    h: Optional[int] = None
    eliminate: bool = True
    evaluation_samples: int = 1000
    track_memory: bool = False
    estimator_factory: EstimatorFactory = None  # type: ignore[assignment]
    new_edge_prob: Optional[NewEdgeProbability] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.estimator_factory is None:
            self.estimator_factory = default_estimator_factory()


def compare_methods_single_st(
    graph: UncertainGraph,
    queries: Sequence[Pair],
    methods: Sequence[str],
    protocol: SingleStProtocol,
) -> Dict[str, MethodStats]:
    """Run every method on every query; aggregate gain/time/memory.

    One :class:`~repro.api.Session` per query owns the compiled plan
    and the shared paired-evaluation world batch; the candidate space
    (Algorithm 4) is computed once per query and shared across methods,
    exactly as in the paper's Tables 5/9/10.  Each method still gets a
    fresh sampler from the protocol's factory so runs stay paired.
    Selection is session-backed: every vectorized registry sampler
    advertises a ``selection_backend()`` (see the support matrix in
    :mod:`repro.reliability.registry`), so ``hc`` and ``topk`` run on
    the session's batched gain kernel — against its cached ``(Z,
    seed)`` world batch for the plain-batch samplers (``mc``/``lazy``)
    or the backend's query-conditioned ``make_batch`` batch
    (per-stratum ``rss``, per-block ``adaptive``).  The Table 4/5 and
    vary-k protocols then pay two sweeps plus popcounts per greedy
    round instead of ``|C|`` full re-estimates.
    """
    stats = {m: MethodStats(method=m) for m in methods}
    for qi, (s, t) in enumerate(queries):
        session = Session(
            graph,
            seed=protocol.seed + qi,
            estimator=protocol.estimator_factory(protocol.seed + qi),
            evaluation_samples=protocol.evaluation_samples,
            r=protocol.r,
            l=protocol.l,
            h=protocol.h,
        )
        shared_space = None
        if protocol.eliminate:
            prob_model = protocol.new_edge_prob or fixed_new_edge_probability(
                protocol.zeta
            )
            shared_space = eliminate_search_space(
                graph,
                s,
                t,
                r=protocol.r,
                new_edge_prob=prob_model,
                estimator=protocol.estimator_factory(protocol.seed + qi),
                h=protocol.h,
            )
        for method in methods:
            query = MaximizeQuery(
                s,
                t,
                k=protocol.k,
                zeta=protocol.zeta,
                method=method,
                estimator=protocol.estimator_factory(protocol.seed + qi),
                new_edge_prob=protocol.new_edge_prob,
                candidate_space=shared_space,
                eliminate=protocol.eliminate,
            )
            result = measure(
                session.maximize,
                query,
                track_memory=protocol.track_memory,
            )
            solution: Solution = result.value.solution
            stats[method].gains.append(solution.gain)
            stats[method].seconds.append(result.seconds)
            stats[method].peak_mb.append(result.peak_mb)
    return stats


def elimination_timings(
    graph: UncertainGraph,
    queries: Sequence[Pair],
    estimator_factory: EstimatorFactory,
    r: int = 100,
    zeta: float = 0.5,
    seed: int = 0,
) -> Tuple[float, float]:
    """(mean elimination seconds, mean candidate count) over queries."""
    total_seconds, total_candidates = 0.0, 0
    prob_model = fixed_new_edge_probability(zeta)
    for qi, (s, t) in enumerate(queries):
        space = eliminate_search_space(
            graph, s, t, r=r,
            new_edge_prob=prob_model,
            estimator=estimator_factory(seed + qi),
        )
        total_seconds += space.elapsed_seconds
        total_candidates += len(space.edges)
    n = max(len(queries), 1)
    return total_seconds / n, total_candidates / n


def compare_methods_multi(
    graph: UncertainGraph,
    sources: Sequence[int],
    targets: Sequence[int],
    methods: Sequence[str],
    aggregate: str,
    k: int = 20,
    zeta: float = 0.5,
    r: int = 100,
    l: int = 30,
    h: Optional[int] = None,
    k1_fraction: float = 0.1,
    estimator_factory: Optional[EstimatorFactory] = None,
    evaluation_samples: int = 300,
    seed: int = 0,
) -> Dict[str, MethodStats]:
    """Multi-source-target comparison (Tables 23-25): BE vs HC/EO/ESSSP/IMA.

    ``methods`` may contain: ``be``, ``hc``, ``eo``, ``esssp``, ``ima``.
    """
    estimator_factory = estimator_factory or default_estimator_factory()
    prob_model = fixed_new_edge_probability(zeta)
    pairs = [(s, t) for s in sources for t in targets if s != t]
    stats = {m: MethodStats(method=m) for m in methods}
    # One session evaluates every method's solution: the no-overlay base
    # evaluation reuses one cached world batch across all methods.
    eval_session = Session(
        graph, seed=seed,
        evaluation_samples=evaluation_samples, evaluation_seed=9999,
    )

    def evaluate(extra: Optional[List[ProbEdge]]) -> float:
        values = eval_session.evaluate_pairs(pairs, extra)
        if aggregate in ("avg", "average"):
            return sum(values) / len(values)
        if aggregate in ("min", "minimum"):
            return min(values)
        return max(values)

    base_value = evaluate(None)
    solver = MultiSourceTargetMaximizer(
        estimator=estimator_factory(seed),
        r=r,
        l=l,
        h=h,
        k1_fraction=k1_fraction,
        evaluation_samples=evaluation_samples,
        seed=seed,
    )
    # Shared candidate space for the flat (non-BE) baselines.
    space = solver.candidate_space(graph, sources, targets, prob_model)
    candidate_pairs = space.edge_pairs()

    for method in methods:
        start = time.perf_counter()
        if method == "be":
            solution = solver.maximize(
                graph, sources, targets, k, zeta=zeta, aggregate=aggregate
            )
            edges = solution.edges
        elif method == "hc":
            edges = _multi_hill_climbing(
                graph, pairs, k, candidate_pairs, prob_model,
                estimator_factory(seed), aggregate,
            )
        elif method == "eo":
            edges = eigenvalue_selection(
                graph, k, prob_model, candidates=candidate_pairs, seed=seed
            )
        elif method == "esssp":
            edges = esssp_selection(
                graph, sources, targets, k, candidate_pairs, prob_model
            )
        elif method == "ima":
            edges = ima_selection(
                graph, sources, targets, k, candidate_pairs, prob_model,
                seed=seed,
            )
        else:
            raise ValueError(f"unknown multi method {method!r}")
        elapsed = time.perf_counter() - start
        new_value = evaluate(list(edges)) if edges else base_value
        stats[method].gains.append(new_value - base_value)
        stats[method].seconds.append(elapsed)
    return stats


def _multi_hill_climbing(
    graph: UncertainGraph,
    pairs: Sequence[Pair],
    k: int,
    candidates: Sequence[Tuple[int, int]],
    prob_model: NewEdgeProbability,
    estimator: ReliabilityEstimator,
    aggregate: str,
) -> List[ProbEdge]:
    """Hill climbing generalized to the aggregate objective.

    With any estimator advertising a ``selection_backend()`` (every
    vectorized registry sampler — see
    :mod:`repro.reliability.registry`), rounds run on the batched gain
    kernel: one sweep per distinct source/target plus bitwise ops per
    candidate, instead of ``|C|`` full multi-pair re-estimates.
    Scalar samplers (``vectorized=False``) keep the per-candidate loop.
    """
    if aggregate not in (
        "avg", "average", "min", "minimum", "max", "maximum"
    ):
        raise ValueError(f"unknown aggregate {aggregate!r}")
    remaining = [(u, v, prob_model(u, v)) for u, v in candidates]
    kernel = selection_kernel_for(graph, estimator)
    if kernel is not None and remaining and pairs:
        return kernel.greedy_select_multi(pairs, k, remaining, aggregate)

    def objective(extra: List[ProbEdge]) -> float:
        values = estimator.pair_reliabilities(graph, list(pairs), extra or None)
        if aggregate in ("avg", "average"):
            return sum(values.values()) / len(values)
        if aggregate in ("min", "minimum"):
            return min(values.values())
        return max(values.values())

    selected: List[ProbEdge] = []
    while len(selected) < k and remaining:
        best_index, best_value = -1, -1.0
        for index, edge in enumerate(remaining):
            value = objective([*selected, edge])
            if value > best_value:
                best_value, best_index = value, index
        selected.append(remaining.pop(best_index))
    return selected
