"""Experiment harness: ASCII tables shaped like the paper's.

Every benchmark builds a :class:`ResultTable` whose rows mirror the rows
of the corresponding paper table, prints it, and asserts the qualitative
claims (who wins, monotonicity, crossovers) that EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence


@dataclass
class ResultTable:
    """A printable experiment table."""

    title: str
    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        """Append a row; floats are formatted to three decimals."""
        self.rows.append([_format_cell(c) for c in cells])

    def add_note(self, note: str) -> None:
        """Attach a footnote shown under the table."""
        self.notes.append(note)

    def render(self) -> str:
        """Aligned ASCII rendering of the table."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(" | ".join(
            h.ljust(w) for h, w in zip(self.headers, widths, strict=True)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(
                c.ljust(w) for c, w in zip(row, widths, strict=False)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def show(self) -> None:
        """Print the rendered table to stdout."""
        print()
        print(self.render())

    def column(self, header: str) -> List[str]:
        """All cells of the named column."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0 for empty input)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


@dataclass
class MethodStats:
    """Aggregated per-method statistics over a query workload."""

    method: str
    gains: List[float] = field(default_factory=list)
    seconds: List[float] = field(default_factory=list)
    peak_mb: List[float] = field(default_factory=list)

    @property
    def mean_gain(self) -> float:
        """Average reliability gain over the workload."""
        return mean(self.gains)

    @property
    def mean_seconds(self) -> float:
        """Average wall-clock seconds per query."""
        return mean(self.seconds)

    @property
    def mean_peak_mb(self) -> float:
        """Average peak allocated MB per query (0 when not tracked)."""
        return mean(self.peak_mb)
