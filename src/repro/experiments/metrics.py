"""Measurement utilities: wall-clock time and peak memory.

The paper reports per-query running time (seconds) and memory usage
(GB of RSS on their C++ testbed).  Here memory is the peak *allocated*
bytes during the call as seen by ``tracemalloc`` — absolute values are
not comparable to the paper's, but relative ordering across methods is.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

T = TypeVar("T")


@dataclass
class Measurement:
    """Result of one timed (and optionally memory-profiled) call."""

    value: Any
    seconds: float
    peak_mb: float


def measure(
    fn: Callable[..., T],
    *args: Any,
    track_memory: bool = False,
    **kwargs: Any,
) -> Measurement:
    """Run ``fn`` and record elapsed seconds (and peak MB if requested).

    ``tracemalloc`` roughly doubles runtime, so memory tracking is
    opt-in; with it off, ``peak_mb`` is 0.
    """
    if track_memory:
        tracemalloc.start()
    start = time.perf_counter()
    try:
        value = fn(*args, **kwargs)
    finally:
        elapsed = time.perf_counter() - start
        if track_memory:
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        else:
            peak = 0
    return Measurement(value=value, seconds=elapsed, peak_mb=peak / (1024 * 1024))
