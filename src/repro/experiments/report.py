"""Collect benchmark result tables into a single report.

``pytest benchmarks/ --benchmark-only`` leaves one rendered table per
experiment under ``benchmarks/results/``; this module stitches them into
one markdown document (the raw material for EXPERIMENTS.md updates).
"""

from __future__ import annotations

import os
from typing import Dict, List

#: Display order: paper tables first, figures, then extras.
_SECTION_ORDER = ("table", "figure", "ablation", "extension")


def collect_result_tables(results_dir: str) -> Dict[str, str]:
    """Read every ``*.txt`` result table, keyed by experiment name."""
    tables: Dict[str, str] = {}
    if not os.path.isdir(results_dir):
        return tables
    for filename in sorted(os.listdir(results_dir)):
        if not filename.endswith(".txt"):
            continue
        path = os.path.join(results_dir, filename)
        with open(path, "r", encoding="utf-8") as handle:
            tables[filename[:-4]] = handle.read().rstrip()
    return tables


def _sort_key(name: str):
    for rank, prefix in enumerate(_SECTION_ORDER):
        if name.startswith(prefix):
            return (rank, name)
    return (len(_SECTION_ORDER), name)


def build_report(
    results_dir: str,
    title: str = "Benchmark results",
) -> str:
    """One markdown document with every result table as a code block."""
    tables = collect_result_tables(results_dir)
    lines: List[str] = [f"# {title}", ""]
    if not tables:
        lines.append("_No result tables found — run the benchmark suite "
                     "first: `pytest benchmarks/ --benchmark-only`._")
        return "\n".join(lines) + "\n"
    lines.append(
        f"{len(tables)} experiments collected from `{results_dir}`."
    )
    lines.append("")
    for name in sorted(tables, key=_sort_key):
        lines.append(f"## {name.replace('_', ' ')}")
        lines.append("")
        lines.append("```")
        lines.append(tables[name])
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def write_report(
    results_dir: str,
    output_path: str,
    title: str = "Benchmark results",
) -> str:
    """Build the report and write it to ``output_path``; returns it."""
    report = build_report(results_dir, title=title)
    with open(output_path, "w", encoding="utf-8") as handle:
        handle.write(report)
    return report
