"""Experiment harness: metrics, tables, reusable drivers."""

from .metrics import Measurement, measure
from .harness import MethodStats, ResultTable, mean
from .report import build_report, collect_result_tables, write_report
from .tables import (
    SingleStProtocol,
    compare_methods_multi,
    compare_methods_single_st,
    default_estimator_factory,
    elimination_timings,
    mc_estimator_factory,
)

__all__ = [
    "Measurement",
    "measure",
    "MethodStats",
    "ResultTable",
    "mean",
    "SingleStProtocol",
    "compare_methods_multi",
    "compare_methods_single_st",
    "default_estimator_factory",
    "elimination_timings",
    "mc_estimator_factory",
    "build_report",
    "collect_result_tables",
    "write_report",
]
