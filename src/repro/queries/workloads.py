"""Query workload generation (§8.1 "Queries").

The paper evaluates on 100 random s-t pairs per dataset, where the
target is 3-5 hops from the source ("if two nodes are too close, their
original reliability will be naturally high").  Multi-source-target
queries grow a source set from the <=5-hop neighborhood of ``s`` and a
disjoint target set from the neighborhood of ``t``.
"""

from __future__ import annotations

import random
from typing import List, Set, Tuple

from ..graph import UncertainGraph

Pair = Tuple[int, int]


def sample_st_pair(
    graph: UncertainGraph,
    rng: random.Random,
    min_hops: int = 3,
    max_hops: int = 5,
    max_attempts: int = 200,
) -> Pair:
    """One s-t pair with hop distance in ``[min_hops, max_hops]``.

    Raises ``RuntimeError`` when the graph has no such pair reachable
    within the attempt budget (e.g. a clique).
    """
    nodes = list(graph.nodes())
    if len(nodes) < 2:
        raise ValueError("graph too small for query generation")
    for _ in range(max_attempts):
        source = rng.choice(nodes)
        dist = graph.hop_distances(source, max_hops=max_hops)
        eligible = [v for v, d in dist.items() if min_hops <= d <= max_hops]
        if eligible:
            return source, rng.choice(eligible)
    raise RuntimeError(
        f"no s-t pair at {min_hops}-{max_hops} hops found "
        f"in {max_attempts} attempts"
    )


def sample_st_pairs(
    graph: UncertainGraph,
    count: int,
    seed: int = 0,
    min_hops: int = 3,
    max_hops: int = 5,
) -> List[Pair]:
    """``count`` distinct s-t pairs (deterministic for a given seed)."""
    rng = random.Random(seed)
    pairs: List[Pair] = []
    seen: Set[Pair] = set()
    attempts = 0
    while len(pairs) < count and attempts < count * 50:
        attempts += 1
        pair = sample_st_pair(graph, rng, min_hops, max_hops)
        if pair not in seen:
            seen.add(pair)
            pairs.append(pair)
    if len(pairs) < count:
        raise RuntimeError(f"could only generate {len(pairs)}/{count} pairs")
    return pairs


def pairs_at_exact_distance(
    graph: UncertainGraph,
    distance: int,
    count: int,
    seed: int = 0,
) -> List[Pair]:
    """Pairs exactly ``distance`` hops apart (Table 19's workload)."""
    rng = random.Random(seed)
    nodes = list(graph.nodes())
    pairs: List[Pair] = []
    seen: Set[Pair] = set()
    attempts = 0
    while len(pairs) < count and attempts < count * 200:
        attempts += 1
        source = rng.choice(nodes)
        dist = graph.hop_distances(source, max_hops=distance)
        eligible = [v for v, d in dist.items() if d == distance]
        if not eligible:
            continue
        pair = (source, rng.choice(eligible))
        if pair not in seen:
            seen.add(pair)
            pairs.append(pair)
    if len(pairs) < count:
        raise RuntimeError(
            f"could only generate {len(pairs)}/{count} pairs at distance {distance}"
        )
    return pairs


def sample_multi_sets(
    graph: UncertainGraph,
    set_size: int,
    seed: int = 0,
    neighborhood_hops: int = 5,
) -> Tuple[List[int], List[int]]:
    """Disjoint source/target sets grown around a random s-t pair (§8.1).

    Returns ``(sources, targets)``, each of ``set_size`` nodes drawn
    uniformly from the <=5-hop neighborhoods of ``s`` and ``t``.
    """
    rng = random.Random(seed)
    for _ in range(100):
        s, t = sample_st_pair(graph, rng)
        s_pool = sorted(graph.within_hops(s, neighborhood_hops) | {s})
        t_pool = sorted(graph.within_hops(t, neighborhood_hops) | {t})
        t_pool = [v for v in t_pool if v not in set(s_pool[:set_size * 2])]
        if len(s_pool) < set_size or len(t_pool) < set_size:
            continue
        sources = rng.sample(s_pool, set_size)
        targets = rng.sample(t_pool, set_size)
        if not set(sources) & set(targets):
            return sources, targets
    raise RuntimeError("could not build disjoint source/target sets")
