"""Query workload generation."""

from .workloads import (
    pairs_at_exact_distance,
    sample_multi_sets,
    sample_st_pair,
    sample_st_pairs,
)

__all__ = [
    "pairs_at_exact_distance",
    "sample_multi_sets",
    "sample_st_pair",
    "sample_st_pairs",
]
