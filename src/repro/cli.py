"""Command-line interface.

Five subcommands cover the library's everyday workflows:

``repro datasets``
    List datasets, or summarize one (the Table 8 columns).
``repro reliability``
    Estimate s-t reliability with any estimator, with optional
    certified bounds.
``repro maximize``
    Run budgeted reliability maximization on a dataset or an edge-list
    file with any method.
``repro mrp``
    Exact most-reliable-path improvement (Algorithm 3).
``repro serve``
    Start the coalescing HTTP JSON server (``POST /reliability``,
    ``POST /maximize``, ``POST /graph`` hot-swap, ``PATCH /edges``
    streaming edits, ``GET /healthz``) — see :mod:`repro.serve`.  ``--store DIR`` attaches a persistent
    reliability index so restarts warm-start from disk.
``repro index``
    Operate on a persistent reliability index directory
    (:mod:`repro.index`): ``build`` pre-samples world batches for a
    graph, ``inspect`` prints the catalog, ``vacuum`` reclaims
    orphaned and temporary files.
``repro check``
    Run the repo-specific invariant lint pass (:mod:`repro.analysis`)
    over source files: seeded-RNG discipline, cache-version bumps,
    batch immutability, monotonic timing.

Invoke as ``python -m repro <subcommand> ...``.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from . import datasets
from .api import MaximizeQuery, ReliabilityQuery, Session, Workload
from .graph import UncertainGraph, read_edge_list, summarize
from .reliability import estimator_names, make_estimator, reliability_bounds
from .core import METHODS, improve_most_reliable_path
from .graph import fixed_new_edge_probability

def _load_graph(args: argparse.Namespace) -> UncertainGraph:
    if args.file:
        return read_edge_list(args.file)
    return datasets.load(args.dataset, num_nodes=args.nodes, seed=args.seed)


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--dataset", choices=datasets.names(),
        help="built-in dataset to load",
    )
    source.add_argument(
        "--file", help="probabilistic edge-list file (u v p per line)"
    )
    parser.add_argument(
        "--nodes", type=int, default=None,
        help="override the dataset's node count",
    )
    parser.add_argument("--seed", type=int, default=0)


def cmd_datasets(args: argparse.Namespace) -> int:
    """List datasets or print one dataset's Table-8-style summary."""
    if not args.name:
        for name in datasets.names():
            print(name)
        return 0
    graph = datasets.load(args.name, num_nodes=args.nodes, seed=args.seed)
    summary = summarize(graph, seed=args.seed)
    print(f"dataset:            {summary.name}")
    print(f"nodes / edges:      {summary.num_nodes} / {summary.num_edges}")
    print(f"directed:           {summary.directed}")
    q1, q2, q3 = summary.prob_quartiles
    print(f"edge probability:   {summary.prob_mean:.2f} ± "
          f"{summary.prob_std:.2f}  quartiles {{{q1:.2f}, {q2:.2f}, {q3:.2f}}}")
    print(f"avg shortest path:  {summary.avg_shortest_path:.1f}")
    print(f"longest short path: {summary.longest_shortest_path}")
    print(f"clustering coeff:   {summary.clustering_coefficient:.2f}")
    return 0


def cmd_reliability(args: argparse.Namespace) -> int:
    """Estimate s-t reliability through a session workload.

    With several ``--target`` nodes, every estimate is answered inside
    the same sampled worlds (one compiled plan, one batch BFS).
    """
    graph = _load_graph(args)
    session = Session(graph, seed=args.seed)
    query = ReliabilityQuery(
        args.source,
        targets=tuple(args.target),
        estimator=args.estimator,
        samples=args.samples,
    )
    [result] = session.run(Workload([query]))
    for (s, t), value in result.pairs:
        print(f"R({s}, {t}) ≈ {value:.4f}  "
              f"[{result.provenance.estimator}, Z={result.provenance.samples}]")
    if args.verbose:
        print(f"provenance: {result.provenance.describe()}")
    if args.bounds:
        for (s, t), value in result.pairs:
            bracket = reliability_bounds(graph, s, t)
            print(f"certified bounds: "
                  f"[{bracket.lower:.4f}, {bracket.upper:.4f}]")
            if not bracket.contains(value, slack=0.05):
                print("warning: estimate outside certified bounds "
                      "(increase --samples)", file=sys.stderr)
    return 0


def cmd_maximize(args: argparse.Namespace) -> int:
    """Run budgeted reliability maximization and print the solution."""
    graph = _load_graph(args)
    session = Session(
        graph,
        seed=args.seed,
        estimator=make_estimator(args.estimator, args.samples, seed=args.seed),
        evaluation_samples=args.evaluation_samples,
        r=args.r,
        l=args.l,
        h=args.h,
    )
    result = session.maximize(MaximizeQuery(
        args.source, args.target, k=args.k,
        zeta=args.zeta, method=args.method,
    ))
    solution = result.solution
    print(f"method:      {solution.method}")
    print(f"candidates:  {solution.num_candidates}")
    print(f"reliability: {solution.base_reliability:.4f} -> "
          f"{solution.new_reliability:.4f}  (gain {solution.gain:+.4f})")
    print(f"time:        elimination {solution.elimination_seconds:.2f}s, "
          f"selection {solution.selection_seconds:.2f}s")
    print(f"sampler:     {result.provenance.estimator} "
          f"[{result.provenance.backend}]")
    for u, v, p in solution.edges:
        print(f"  + edge {u} -> {v}  (p={p:.3f})")
    if not solution.edges:
        print("  (no beneficial edges found)")
    return 0


def cmd_mrp(args: argparse.Namespace) -> int:
    """Run the exact most-reliable-path improvement (Algorithm 3)."""
    graph = _load_graph(args)
    solution = improve_most_reliable_path(
        graph, args.source, args.target, args.k,
        fixed_new_edge_probability(args.zeta),
        h=args.h,
    )
    print(f"most reliable path probability: "
          f"{solution.old_probability:.4f} -> {solution.new_probability:.4f}")
    if solution.path:
        print(f"path: {' -> '.join(str(u) for u in solution.path)}")
    for u, v, p in solution.edges:
        print(f"  + edge {u} -> {v}  (p={p:.3f})")
    if not solution.edges:
        print("  (no addition improves the most reliable path)")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Start the coalescing HTTP server over one long-lived session.

    With ``--shards N`` (N >= 2) the server fronts a supervised pool of
    N worker processes instead of one in-process coalescer: requests
    route by their coalescing key, a crashed worker is respawned under
    doubling backoff, and its in-flight requests replay bit-for-bit on
    a healthy shard.

    SIGTERM/SIGINT trigger a graceful drain: stop accepting, finish
    in-flight batches, exit 0.  A second signal forces an immediate
    exit with a non-zero status (130).
    """
    import signal

    from .serve import ReliabilityServer, ShardSupervisor  # local: keep base CLI light

    graph = _load_graph(args)
    session_kwargs = dict(
        seed=args.seed,
        estimator=args.estimator,
        selection_samples=args.samples,
        evaluation_samples=args.evaluation_samples,
        fuse_max_words=args.fuse_max_words,
        r=args.r,
        l=args.l,
    )
    store = None
    supervisor = None
    if args.shards >= 2:
        # Workers open their own handles on the shared store directory;
        # the flock writer lock and breakers handle contention.
        supervisor = ShardSupervisor(
            graph,
            num_shards=args.shards,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            max_pending=args.max_pending or None,
            heartbeat_interval_s=args.heartbeat_interval_s,
            heartbeat_timeout_s=4.0 * args.heartbeat_interval_s,
            replay_budget=args.replay_budget,
            store_path=args.store or None,
            **session_kwargs,
        )
        server = ReliabilityServer(supervisor, host=args.host, port=args.port)
    else:
        if args.store:
            from .index import IndexStore  # local: keep base CLI light

            store = IndexStore(args.store)
        server = ReliabilityServer(
            graph,
            host=args.host,
            port=args.port,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            max_pending=args.max_pending or None,
            store=store,
            **session_kwargs,
        )

    async def _run() -> int:
        loop = asyncio.get_running_loop()
        stop_requested = asyncio.Event()

        def _on_signal() -> None:
            if not stop_requested.is_set():
                print("\nsignal received: draining "
                      "(send again to force quit)", flush=True)
                stop_requested.set()
            else:
                print("\nsecond signal: forcing exit", flush=True)
                for task in asyncio.all_tasks(loop):
                    task.cancel()

        installed = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, _on_signal)
                installed.append(sig)
            except (NotImplementedError, RuntimeError):
                pass  # non-POSIX loop: fall back to KeyboardInterrupt
        host, port = await server.start()
        name = graph.name or "graph"
        print(f"serving {name} (n={graph.num_nodes}, m={graph.num_edges}, "
              f"version={graph.version}) on http://{host}:{port}",
              flush=True)
        print("  POST /reliability  {source, target|targets, samples, "
              "estimator, seed}")
        print("  POST /maximize     {source, target, k, zeta, method, ...}")
        print("  POST /graph        {edges: [[u, v, p], ...], directed, name}")
        print("  PATCH /edges       {upserts: [[u, v, p], ...], "
              "deletes: [[u, v], ...]}")
        print("  GET  /healthz")
        print(f"coalescer: max_batch={args.max_batch}, "
              f"max_wait_ms={args.max_wait_ms}, "
              f"max_pending={args.max_pending or 'unbounded'}", flush=True)
        if supervisor is not None:
            pids = [row["pid"] for row in supervisor.describe()["shards"]]
            print(f"shards: {args.shards} workers (pids {pids}), "
                  f"heartbeat_interval_s={args.heartbeat_interval_s}, "
                  f"replay_budget={args.replay_budget}", flush=True)
            if args.store:
                print(f"store: {args.store} (one handle per shard)",
                      flush=True)
        if store is not None:
            stats = store.stats()
            print(f"store: {stats.path} (schema v{stats.schema_version}, "
                  f"{stats.num_batches} batches, {stats.num_results} "
                  f"cached results)", flush=True)
        serve_task = asyncio.ensure_future(server.serve_forever())
        try:
            await stop_requested.wait()
            await server.stop()  # graceful: drains in-flight batches
            if supervisor is not None:
                await supervisor.close()  # drain + reap worker processes
            serve_task.cancel()
            await asyncio.gather(serve_task, return_exceptions=True)
        except asyncio.CancelledError:
            # Forced by a second signal: abandon the drain.
            return 130
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
            if store is not None:
                store.close()
        print("drained cleanly", flush=True)
        return 0

    try:
        return asyncio.run(_run())
    except KeyboardInterrupt:  # non-POSIX fallback path
        print("shutting down")
        return 0


def cmd_index_build(args: argparse.Namespace) -> int:
    """Pre-sample world batches for a graph into a store directory."""
    from .index import IndexStore  # local: keep base CLI light

    graph = _load_graph(args)
    with IndexStore(args.store) as store:
        session = Session(graph, seed=args.seed, store=store)
        print(f"indexing {graph.name or 'graph'} "
              f"(hash {session.graph_hash()[:12]}…) into {store.root}")
        for samples in args.samples:
            _, elapsed, source = session.world_batch(samples, args.seed)
            verb = {"store": "already stored",
                    "memory": "cached"}.get(source, "sampled")
            print(f"  Z={samples:<8} seed={args.seed}: {verb} "
                  f"({elapsed * 1000:.1f} ms)")
        stats = store.stats()
        print(f"store now holds {stats.num_batches} batches "
              f"({stats.batch_bytes / 1e6:.1f} MB), "
              f"{stats.num_results} cached results")
    return 0


def _require_store_dir(store: str) -> bool:
    """True when ``store`` is an existing directory; report otherwise.

    ``inspect`` and ``vacuum`` are read/repair operations on a store
    somebody already built — opening them must never conjure an empty
    store out of a typo'd path (:class:`repro.index.IndexStore` creates
    its root on open, which is right for ``build``/``serve`` only).
    """
    if Path(store).is_dir():
        return True
    print(f"repro index: {store}: no such store directory", file=sys.stderr)
    return False


def cmd_index_inspect(args: argparse.Namespace) -> int:
    """Print a store's catalog (human-readable or ``--json``)."""
    from .index import StoreError, describe_store, dump_stats_json

    if not _require_store_dir(args.store):
        return 2
    try:
        print(dump_stats_json(args.store) if args.json
              else describe_store(args.store))
    except StoreError as error:
        print(f"repro index: {error}", file=sys.stderr)
        return 1
    return 0


def cmd_index_vacuum(args: argparse.Namespace) -> int:
    """Reap crash debris from a store directory."""
    from .index import IndexStore, StoreError

    if not _require_store_dir(args.store):
        return 2
    try:
        with IndexStore(args.store) as store:
            dropped = store.clear_results() if args.drop_results else 0
            report = store.vacuum()
    except StoreError as error:
        print(f"repro index: {error}", file=sys.stderr)
        return 1
    print(f"removed {report.removed_tmp_files} tmp files, "
          f"{report.removed_orphan_files} orphan files; "
          f"pruned {report.pruned_rows} catalog rows" +
          (f"; dropped {dropped} cached results" if args.drop_results else ""))
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    """Run the invariant lint pass (delegates to :mod:`repro.analysis`)."""
    from .analysis import main as check_main  # local: keep base CLI light

    forwarded: List[str] = list(args.paths)
    for code in args.select or []:
        forwarded += ["--select", code]
    if args.list_rules:
        forwarded.append("--list-rules")
    return check_main(forwarded)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reliability maximization in uncertain graphs "
                    "(Ke et al., ICDE 2021).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_data = subparsers.add_parser(
        "datasets", help="list datasets or summarize one"
    )
    p_data.add_argument("name", nargs="?", choices=datasets.names())
    p_data.add_argument("--nodes", type=int, default=None)
    p_data.add_argument("--seed", type=int, default=0)
    p_data.set_defaults(func=cmd_datasets)

    p_rel = subparsers.add_parser(
        "reliability", help="estimate s-t reliability"
    )
    _add_graph_arguments(p_rel)
    p_rel.add_argument("--source", type=int, required=True)
    p_rel.add_argument(
        "--target", type=int, required=True, nargs="+",
        help="target node(s); several targets share one world batch",
    )
    p_rel.add_argument("--estimator", choices=estimator_names(), default="mc")
    p_rel.add_argument("--samples", type=int, default=1000)
    p_rel.add_argument(
        "--bounds", action="store_true",
        help="also print certified lower/upper bounds",
    )
    p_rel.add_argument(
        "--verbose", action="store_true",
        help="also print result provenance (backend, timings)",
    )
    p_rel.set_defaults(func=cmd_reliability)

    p_max = subparsers.add_parser(
        "maximize", help="budgeted reliability maximization"
    )
    _add_graph_arguments(p_max)
    p_max.add_argument("--source", type=int, required=True)
    p_max.add_argument("--target", type=int, required=True)
    p_max.add_argument("-k", type=int, default=5, help="edge budget")
    p_max.add_argument("--zeta", type=float, default=0.5)
    p_max.add_argument("--method", choices=METHODS, default="be")
    p_max.add_argument("--estimator", choices=estimator_names(), default="rss")
    p_max.add_argument("--samples", type=int, default=250)
    p_max.add_argument("--evaluation-samples", type=int, default=1000)
    p_max.add_argument("-r", type=int, default=100,
                       help="relevant nodes per side (Algorithm 4)")
    p_max.add_argument("-l", type=int, default=30,
                       help="number of most reliable paths")
    p_max.add_argument("--h", type=int, default=None,
                       help="hop constraint for new edges")
    p_max.set_defaults(func=cmd_maximize)

    p_mrp = subparsers.add_parser(
        "mrp", help="exact most-reliable-path improvement (Algorithm 3)"
    )
    _add_graph_arguments(p_mrp)
    p_mrp.add_argument("--source", type=int, required=True)
    p_mrp.add_argument("--target", type=int, required=True)
    p_mrp.add_argument("-k", type=int, default=3)
    p_mrp.add_argument("--zeta", type=float, default=0.5)
    p_mrp.add_argument("--h", type=int, default=None)
    p_mrp.set_defaults(func=cmd_mrp)

    p_serve = subparsers.add_parser(
        "serve", help="serve coalesced reliability queries over HTTP"
    )
    _add_graph_arguments(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8321,
                         help="bind port (0 picks a free port)")
    p_serve.add_argument(
        "--max-batch", type=int, default=64,
        help="flush a coalesced batch at this many pending queries",
    )
    p_serve.add_argument(
        "--max-wait-ms", type=float, default=2.0,
        help="coalescing window: max extra latency per request",
    )
    p_serve.add_argument(
        "--max-pending", type=int, default=1024,
        help="admission bound: shed requests (503 + Retry-After) once "
             "this many queries are pending or executing; 0 disables "
             "shedding",
    )
    p_serve.add_argument(
        "--shards", type=int, default=1,
        help="worker-process count: >= 2 serves through a supervised "
             "shard pool with crash replay and two-phase graph swaps; "
             "1 (default) keeps the single in-process coalescer",
    )
    p_serve.add_argument(
        "--heartbeat-interval-s", type=float, default=1.0,
        help="shard-pool ping cadence; a worker silent for 4 intervals "
             "is declared dead, SIGKILLed and respawned",
    )
    p_serve.add_argument(
        "--replay-budget", type=int, default=3,
        help="shard deaths one request may survive (be replayed past) "
             "before failing with 503",
    )
    p_serve.add_argument(
        "--estimator", choices=estimator_names(), default="rss",
        help="selection estimator for /maximize queries",
    )
    p_serve.add_argument("--samples", type=int, default=250,
                         help="selection-estimator sample budget")
    p_serve.add_argument("--evaluation-samples", type=int, default=1000)
    p_serve.add_argument(
        "--fuse-max-words", type=int, default=None,
        help="engine dispatch knob: fuse multi-source sweeps while the "
             "world-batch row is at most this many uint64 words "
             "(0 disables fusion; default: measured engine setting)",
    )
    p_serve.add_argument(
        "--store", default=None, metavar="DIR",
        help="attach a persistent reliability index at this directory "
             "(created if absent); restarts warm-start from it",
    )
    p_serve.add_argument("-r", type=int, default=100,
                         help="relevant nodes per side (Algorithm 4)")
    p_serve.add_argument("-l", type=int, default=30,
                         help="number of most reliable paths")
    p_serve.set_defaults(func=cmd_serve)

    p_index = subparsers.add_parser(
        "index", help="operate on a persistent reliability index directory"
    )
    index_sub = p_index.add_subparsers(dest="index_command", required=True)

    p_build = index_sub.add_parser(
        "build", help="pre-sample world batches for a graph into a store"
    )
    _add_graph_arguments(p_build)
    p_build.add_argument("--store", required=True, metavar="DIR",
                         help="store directory (created if absent)")
    p_build.add_argument(
        "--samples", type=int, nargs="+", default=[1000],
        metavar="Z", help="world-batch sizes to pre-sample (one batch each)",
    )
    p_build.set_defaults(func=cmd_index_build)

    p_inspect = index_sub.add_parser(
        "inspect", help="print a store's catalog and statistics"
    )
    p_inspect.add_argument("--store", required=True, metavar="DIR")
    p_inspect.add_argument("--json", action="store_true",
                           help="emit machine-readable JSON")
    p_inspect.set_defaults(func=cmd_index_inspect)

    p_vacuum = index_sub.add_parser(
        "vacuum", help="reap crash debris (tmp/orphan files, stale rows)"
    )
    p_vacuum.add_argument("--store", required=True, metavar="DIR")
    p_vacuum.add_argument(
        "--drop-results", action="store_true",
        help="also drop every cached result row (stale-namespace cleanup)",
    )
    p_vacuum.set_defaults(func=cmd_index_vacuum)

    p_check = subparsers.add_parser(
        "check", help="lint sources against the repo's determinism "
                      "invariants (REP001–REP006)"
    )
    p_check.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to check (default: src/repro)",
    )
    p_check.add_argument(
        "--select", action="append", metavar="CODE",
        help="only run these rule codes (repeatable)",
    )
    p_check.add_argument(
        "--list-rules", action="store_true",
        help="print every rule code and summary, then exit",
    )
    p_check.set_defaults(func=cmd_check)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
