"""Scaled-down stand-ins for the paper's four large real datasets.

The real LastFM / AS-Topology / DBLP / Twitter graphs range from 6.9k to
6.3M nodes; the paper's probability models are public, but the graphs
themselves are too large for a pure-Python testbed.  Each builder below
produces a topology from the matching generator family at laptop scale
and applies the *same probability model* the paper describes for that
dataset (see Table 8 and §8.1), so relative algorithm behaviour — which
method wins, how gains respond to parameters — is preserved.

Default sizes (overridable via ``num_nodes``):

=============  ======  ==========================  ==========================
dataset        nodes   topology                    probability model
=============  ======  ==========================  ==========================
lastfm         1200    Watts-Strogatz (k=7, 0.5)   inverse out-degree
as-topology    2000    preferential attachment,    snapshot frequency
                       directed
dblp           2500    Watts-Strogatz (k=6, 0.1)   1 - exp(-t/20), t ~ collab
twitter        3000    powerlaw-cluster (m=2)      1 - exp(-t/20), t ~ retweet
=============  ======  ==========================  ==========================
"""

from __future__ import annotations

from ..graph import (
    UncertainGraph,
    assign_exponential_counts,
    assign_inverse_out_degree,
    assign_snapshot_frequency,
    barabasi_albert,
    powerlaw_cluster,
    watts_strogatz,
)


def build_lastfm(num_nodes: int = 1200, seed: int = 0) -> UncertainGraph:
    """LastFM-like social graph: small-world, inverse-out-degree probs."""
    graph = watts_strogatz(num_nodes, k=7, beta=0.5, seed=seed, name="lastfm")
    return assign_inverse_out_degree(graph)


def build_as_topology(num_nodes: int = 2000, seed: int = 0) -> UncertainGraph:
    """AS-Topology-like device network: directed hubs, snapshot probs.

    Built from an undirected preferential-attachment skeleton; each link
    becomes two directed edges with independent snapshot-persistence
    probabilities (BGP sessions fail asymmetrically).
    """
    skeleton = barabasi_albert(num_nodes, m=2, seed=seed, name="as-topology")
    graph = UncertainGraph(directed=True, name="as-topology")
    for u in skeleton.nodes():
        graph.add_node(u)
    for u, v, _ in skeleton.edges():
        graph.add_edge(u, v, 1.0)
        graph.add_edge(v, u, 1.0)
    return assign_snapshot_frequency(graph, seed=seed + 1)


def build_dblp(num_nodes: int = 2500, seed: int = 0) -> UncertainGraph:
    """DBLP-like collaboration graph: high clustering, exp-CDF probs."""
    graph = watts_strogatz(num_nodes, k=6, beta=0.1, seed=seed, name="dblp")
    return assign_exponential_counts(
        graph, mu=20.0, mean_count=2.3, seed=seed + 1
    )


def build_twitter(num_nodes: int = 3000, seed: int = 0) -> UncertainGraph:
    """Twitter-like retweet graph: sparse scale-free, exp-CDF probs.

    The paper highlights Twitter as its sparsest dataset — the regime
    where reliable paths need several missing edges and batch selection
    wins most clearly — so this stand-in uses the lowest attachment
    count of the set.
    """
    graph = powerlaw_cluster(
        num_nodes, m=2, triad_probability=0.6, seed=seed, name="twitter"
    )
    return assign_exponential_counts(
        graph, mu=20.0, mean_count=3.0, seed=seed + 1
    )
