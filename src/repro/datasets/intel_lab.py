"""Intel Lab sensor network stand-in (54 sensors, Figures 6/7, Table 11).

The paper's case study uses the Intel Berkeley Research Lab trace: 54
sensors on a ~40m x 30m floor, edge probability = fraction of messages
delivered, links beyond ~20 m effectively dead, new links restricted to
<= 15 m.  The trace itself is not redistributable, so this module builds
a *geometric simulation* with the same structure:

* 54 sensors whose coordinates follow the published lab map's shape —
  a perimeter ring plus a dense bottom-lab cluster and a sparser
  center/left region (the features the case study's narrative relies on);
* link probability decays exponentially with distance (plus noise),
  links with p < 0.1 dropped, matching the paper's preprocessing;
* the same candidate rule: new links only between sensors <= 15 m apart.

Node ids are 1..54 to match the paper's sensor numbering style.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from ..graph import UncertainGraph

LAB_WIDTH = 40.0
LAB_HEIGHT = 30.0
LINK_CUTOFF = 12.0
NEW_LINK_CUTOFF = 15.0
MIN_PROBABILITY = 0.1
DECAY_SCALE = 5.0


def sensor_positions(seed: int = 7) -> Dict[int, Tuple[float, float]]:
    """Deterministic 54-sensor layout echoing the lab map's shape.

    Sensors 1-10: right wall (top to bottom).  Sensors 11-20: dense
    bottom strip.  Sensors 21-26: lower-left corner.  Sensors 27-37:
    left wall going up.  Sensors 38-46: top wall.  Sensors 47-54:
    interior (center), sparse.
    """
    rng = np.random.default_rng(seed)
    positions: Dict[int, Tuple[float, float]] = {}
    sensor = 1
    # Right wall, top to bottom.
    for i in range(10):
        positions[sensor] = (
            LAB_WIDTH - 1.5 + float(rng.normal(0, 0.3)),
            LAB_HEIGHT - 2.0 - i * (LAB_HEIGHT - 4.0) / 9.0,
        )
        sensor += 1
    # Dense bottom strip, right to left.
    for i in range(10):
        positions[sensor] = (
            LAB_WIDTH - 4.0 - i * (LAB_WIDTH - 8.0) / 9.0,
            1.5 + float(rng.normal(0, 0.4)),
        )
        sensor += 1
    # Lower-left corner cluster.
    for i in range(6):
        positions[sensor] = (
            2.0 + (i % 3) * 2.0 + float(rng.normal(0, 0.3)),
            3.0 + (i // 3) * 2.5 + float(rng.normal(0, 0.3)),
        )
        sensor += 1
    # Left wall going up.
    for i in range(11):
        positions[sensor] = (
            1.5 + float(rng.normal(0, 0.3)),
            6.0 + i * (LAB_HEIGHT - 8.0) / 10.0,
        )
        sensor += 1
    # Top wall, left to right.
    for i in range(9):
        positions[sensor] = (
            4.0 + i * (LAB_WIDTH - 8.0) / 8.0,
            LAB_HEIGHT - 1.5 + float(rng.normal(0, 0.3)),
        )
        sensor += 1
    # Sparse interior.
    for i in range(8):
        positions[sensor] = (
            10.0 + (i % 4) * 6.0 + float(rng.normal(0, 0.5)),
            12.0 + (i // 4) * 6.0 + float(rng.normal(0, 0.5)),
        )
        sensor += 1
    assert sensor == 55, "expected exactly 54 sensors"
    return positions


def build(seed: int = 7) -> UncertainGraph:
    """The simulated Intel-Lab uncertain graph (directed, 54 sensors)."""
    positions = sensor_positions(seed)
    rng = np.random.default_rng(seed + 1)
    graph = UncertainGraph(directed=True, name="intel-lab")
    sensors = sorted(positions)
    for u in sensors:
        graph.add_node(u)
    for u in sensors:
        for v in sensors:
            if u == v:
                continue
            dist = _distance(positions[u], positions[v])
            if dist > LINK_CUTOFF:
                continue
            # Message-delivery ratio: exponential decay with distance,
            # direction-specific noise (real radio links are asymmetric).
            p = math.exp(-dist / DECAY_SCALE) + float(rng.normal(0.0, 0.05))
            p = min(max(p, 0.0), 0.95)
            if p >= MIN_PROBABILITY:
                graph.add_edge(u, v, p)
    return graph


def candidate_links(
    graph: UncertainGraph,
    positions: Dict[int, Tuple[float, float]],
    max_distance: float = NEW_LINK_CUTOFF,
) -> List[Tuple[int, int]]:
    """Missing links installable under the <= 15 m physical constraint."""
    sensors = sorted(positions)
    pairs: List[Tuple[int, int]] = []
    for u in sensors:
        for v in sensors:
            if u == v or graph.has_edge(u, v):
                continue
            if _distance(positions[u], positions[v]) <= max_distance:
                pairs.append((u, v))
    return pairs


def average_link_probability(graph: UncertainGraph) -> float:
    """Mean probability over existing links (the paper's zeta = 0.33)."""
    probs = [p for _, _, p in graph.edges()]
    return sum(probs) / len(probs) if probs else 0.0


def _distance(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])
