"""Dataset builders: real-dataset stand-ins + Table 8 synthetics."""

from . import intel_lab, social, synthetic
from .registry import (
    REAL_DATASETS,
    SYNTHETIC_DATASETS,
    clear_cache,
    load,
    names,
)

__all__ = [
    "intel_lab",
    "social",
    "synthetic",
    "REAL_DATASETS",
    "SYNTHETIC_DATASETS",
    "clear_cache",
    "load",
    "names",
]
