"""The eight synthetic datasets of Table 8 (scaled to laptop size).

Four generator families, two densities each, all with edge probabilities
uniform in ``(0, 0.6]`` exactly as the paper specifies.  Default scale is
2000 nodes with 5000/10000 edges (the paper uses 1M/2.5M/5M; relative
behaviour across families is scale-free — see DESIGN.md §4).
"""

from __future__ import annotations

from ..graph import (
    UncertainGraph,
    assign_uniform,
    barabasi_albert,
    erdos_renyi,
    watts_strogatz,
)

DEFAULT_NODES = 2000


def build_random(variant: int = 1, num_nodes: int = DEFAULT_NODES, seed: int = 0) -> UncertainGraph:
    """Erdős–Rényi *Random 1/2*: fixed edge counts 2.5x / 5x nodes."""
    _check_variant(variant)
    num_edges = num_nodes * 25 // 10 if variant == 1 else num_nodes * 5
    graph = erdos_renyi(
        num_nodes, num_edges=num_edges, seed=seed, name=f"random-{variant}"
    )
    return assign_uniform(graph, 0.0, 0.6, seed=seed + 1)


def build_regular(variant: int = 1, num_nodes: int = DEFAULT_NODES, seed: int = 0) -> UncertainGraph:
    """*Regular 1/2*: near-regular ring lattice with k = 5 / 10.

    Table 8 reports high clustering (0.56) AND long shortest paths (11+)
    for the Regular datasets — the signature of a (barely perturbed)
    ring lattice, not of a random regular expander (which has C ~ k/n
    and logarithmic paths).  A 2% rewiring keeps the lattice character
    while bounding the diameter at evaluation scale.
    """
    _check_variant(variant)
    degree = 5 if variant == 1 else 10
    graph = watts_strogatz(
        num_nodes, k=degree, beta=0.02, seed=seed, name=f"regular-{variant}"
    )
    return assign_uniform(graph, 0.0, 0.6, seed=seed + 1)


def build_smallworld(variant: int = 1, num_nodes: int = DEFAULT_NODES, seed: int = 0) -> UncertainGraph:
    """Watts–Strogatz *SmallWorld 1/2* with k = 5 / 10, beta = 0.3."""
    _check_variant(variant)
    k = 5 if variant == 1 else 10
    graph = watts_strogatz(
        num_nodes, k=k, beta=0.3, seed=seed, name=f"smallworld-{variant}"
    )
    return assign_uniform(graph, 0.0, 0.6, seed=seed + 1)


def build_scalefree(variant: int = 1, num_nodes: int = DEFAULT_NODES, seed: int = 0) -> UncertainGraph:
    """Barabási–Albert *ScaleFree 1/2*.

    Variant 1 alternates attachment counts m = 2, 3 (the paper's tweak to
    match Random 1's edge count); variant 2 uses m = 5.
    """
    _check_variant(variant)
    if variant == 1:
        graph = barabasi_albert(
            num_nodes, m_schedule=[2, 3], seed=seed, name="scalefree-1"
        )
    else:
        graph = barabasi_albert(num_nodes, m=5, seed=seed, name="scalefree-2")
    return assign_uniform(graph, 0.0, 0.6, seed=seed + 1)


def _check_variant(variant: int) -> None:
    if variant not in (1, 2):
        raise ValueError(f"variant must be 1 or 2, got {variant}")
