"""Dataset registry: build-by-name with caching.

``load("twitter")`` returns the Twitter-like stand-in; ``scale`` shrinks
or grows node counts (Table 22's knob), and results are memoized so the
benchmark suite builds each graph once.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..graph import UncertainGraph
from . import intel_lab, social, synthetic

_BUILDERS: Dict[str, Callable[[int, int], UncertainGraph]] = {
    "intel-lab": lambda num_nodes, seed: intel_lab.build(seed=seed or 7),
    "lastfm": lambda num_nodes, seed: social.build_lastfm(num_nodes or 1200, seed),
    "as-topology": lambda num_nodes, seed: social.build_as_topology(num_nodes or 2000, seed),
    "dblp": lambda num_nodes, seed: social.build_dblp(num_nodes or 2500, seed),
    "twitter": lambda num_nodes, seed: social.build_twitter(num_nodes or 3000, seed),
    "random-1": lambda num_nodes, seed: synthetic.build_random(1, num_nodes or 2000, seed),
    "random-2": lambda num_nodes, seed: synthetic.build_random(2, num_nodes or 2000, seed),
    "regular-1": lambda num_nodes, seed: synthetic.build_regular(1, num_nodes or 2000, seed),
    "regular-2": lambda num_nodes, seed: synthetic.build_regular(2, num_nodes or 2000, seed),
    "smallworld-1": lambda num_nodes, seed: synthetic.build_smallworld(1, num_nodes or 2000, seed),
    "smallworld-2": lambda num_nodes, seed: synthetic.build_smallworld(2, num_nodes or 2000, seed),
    "scalefree-1": lambda num_nodes, seed: synthetic.build_scalefree(1, num_nodes or 2000, seed),
    "scalefree-2": lambda num_nodes, seed: synthetic.build_scalefree(2, num_nodes or 2000, seed),
}

REAL_DATASETS = ("intel-lab", "lastfm", "as-topology", "dblp", "twitter")
SYNTHETIC_DATASETS = (
    "random-1", "random-2", "regular-1", "regular-2",
    "smallworld-1", "smallworld-2", "scalefree-1", "scalefree-2",
)

_cache: Dict[Tuple[str, Optional[int], int], UncertainGraph] = {}


def names() -> List[str]:
    """All registered dataset names."""
    return sorted(_BUILDERS)


def load(
    name: str,
    num_nodes: Optional[int] = None,
    seed: int = 0,
    copy: bool = False,
) -> UncertainGraph:
    """Build (or fetch cached) dataset ``name``.

    ``num_nodes=None`` uses the dataset's default scale.  The cached
    instance is shared — pass ``copy=True`` before mutating it.
    """
    if name not in _BUILDERS:
        raise KeyError(f"unknown dataset {name!r}; known: {names()}")
    key = (name, num_nodes, seed)
    if key not in _cache:
        _cache[key] = _BUILDERS[name](num_nodes or 0, seed)
    graph = _cache[key]
    return graph.copy() if copy else graph


def clear_cache() -> None:
    """Drop all cached datasets (mainly for tests)."""
    _cache.clear()
