"""Targeted influence maximization by edge addition (§8.4.2).

The paper's application: boost the expected influence spread from a
source group (senior researchers) into a target group (junior
researchers) by recommending ``k`` new edges.

Reduction used here (and implicit in the paper's Eq. 13 vs Eq. 14
discussion): attach a virtual super-source ``sigma`` to every source
with probability-1 edges; then ``Inf(S, T) = sum_t R(sigma, t)``, so the
multi-target *average* reliability maximizer solves targeted IM
directly.  Candidate edges touching ``sigma`` are forbidden — the
virtual node is an analysis device, not a recommendable user.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..graph import UncertainGraph
from ..core.multi import MultiSourceTargetMaximizer
from ..reliability import ReliabilityEstimator
from ..baselines.common import NewEdgeProbability, ProbEdge
from .spread import influence_spread


@dataclass
class InfluenceSolution:
    """Edges recommended for targeted influence maximization."""

    edges: List[ProbEdge]
    base_spread: float
    new_spread: float

    @property
    def gain(self) -> float:
        """Additional expected activations inside the target set."""
        return self.new_spread - self.base_spread


def maximize_targeted_influence(
    graph: UncertainGraph,
    sources: Sequence[int],
    targets: Sequence[int],
    k: int,
    zeta: float = 0.5,
    r: int = 100,
    l: int = 30,
    h: Optional[int] = None,
    estimator: Optional[ReliabilityEstimator] = None,
    new_edge_prob: Optional[NewEdgeProbability] = None,
    spread_samples: int = 300,
    seed: int = 0,
) -> InfluenceSolution:
    """Select ``k`` edges maximizing ``Inf(S, T)`` (independent cascade)."""
    if k < 1:
        raise ValueError("k must be positive")
    sigma = _virtual_node_id(graph)
    augmented = graph.copy()
    for s in sources:
        augmented.add_edge(sigma, s, 1.0)

    solver = MultiSourceTargetMaximizer(
        estimator=estimator,
        r=r,
        l=l,
        h=None,  # hop distances through sigma are distorted; skip h here
        seed=seed,
    )
    solution = solver.maximize(
        augmented,
        [sigma],
        list(targets),
        k,
        zeta=zeta,
        aggregate="average",
        new_edge_prob=new_edge_prob,
        forbidden_nodes={sigma},
    )
    base = influence_spread(
        graph, sources, targets, num_samples=spread_samples, seed=seed + 1
    )
    new = influence_spread(
        graph, sources, targets, num_samples=spread_samples, seed=seed + 1,
        extra_edges=solution.edges,
    )
    return InfluenceSolution(edges=solution.edges, base_spread=base, new_spread=new)


def _virtual_node_id(graph: UncertainGraph) -> int:
    """A node id guaranteed not to collide with the graph's nodes."""
    return max(graph.nodes(), default=0) + 1_000_000
