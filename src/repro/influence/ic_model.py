"""Independent cascade (IC) diffusion model.

Under IC, a newly-activated node gets one chance to activate each
inactive out-neighbor ``v`` with probability ``p(u, v)``.  The standard
live-edge equivalence makes a cascade from seed set ``S`` identical in
distribution to the reach set of ``S`` in one sampled possible world —
which is how the paper connects influence spread to reliability (Eq. 13
vs Eq. 14, §8.4.2).
"""

from __future__ import annotations

import random
from collections import deque
from typing import List, Optional, Sequence, Set, Tuple

from ..graph import UncertainGraph

ProbEdge = Tuple[int, int, float]


def simulate_cascade(
    graph: UncertainGraph,
    seeds: Sequence[int],
    rng: random.Random,
    extra_edges: Optional[Sequence[ProbEdge]] = None,
) -> Set[int]:
    """One IC cascade; returns the final activated set.

    Implemented as sampled multi-source BFS (live-edge equivalence):
    each edge is probed at most once per cascade.
    """
    overlay = {}
    if extra_edges:
        for u, v, p in extra_edges:
            overlay.setdefault(u, []).append((v, p))
            if not graph.directed:
                overlay.setdefault(v, []).append((u, p))
    active: Set[int] = {s for s in seeds if s in graph}
    frontier = deque(active)
    rand = rng.random
    while frontier:
        u = frontier.popleft()
        neighbors = list(graph.successors(u).items())
        if u in overlay:
            neighbors.extend(overlay[u])
        for v, p in neighbors:
            if v in active:
                continue
            if p >= 1.0 or rand() < p:
                active.add(v)
                frontier.append(v)
    return active


def cascade_steps(
    graph: UncertainGraph,
    seeds: Sequence[int],
    rng: random.Random,
) -> List[Set[int]]:
    """One cascade, reported round by round (for visualization/tests).

    ``result[0]`` is the seed set; ``result[i]`` the nodes first
    activated at step ``i``.
    """
    active: Set[int] = {s for s in seeds if s in graph}
    rounds: List[Set[int]] = [set(active)]
    current = set(active)
    rand = rng.random
    while current:
        next_round: Set[int] = set()
        for u in current:
            for v, p in graph.successors(u).items():
                if v in active or v in next_round:
                    continue
                if p >= 1.0 or rand() < p:
                    next_round.add(v)
        if not next_round:
            break
        active |= next_round
        rounds.append(next_round)
        current = next_round
    return rounds
