"""Influence maximization application (independent cascade)."""

from .ic_model import cascade_steps, simulate_cascade
from .spread import influence_spread
from .targeted_im import InfluenceSolution, maximize_targeted_influence

__all__ = [
    "cascade_steps",
    "simulate_cascade",
    "influence_spread",
    "InfluenceSolution",
    "maximize_targeted_influence",
]
