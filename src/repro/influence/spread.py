"""Influence spread estimation (Eq. 13).

``Inf(S, T)`` is the expected number of target nodes activated by a
cascade seeded at ``S`` — equivalently, the expected number of targets
reachable from ``S`` across possible worlds.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Tuple

from ..graph import UncertainGraph
from .ic_model import simulate_cascade

ProbEdge = Tuple[int, int, float]


def influence_spread(
    graph: UncertainGraph,
    sources: Sequence[int],
    targets: Optional[Sequence[int]] = None,
    num_samples: int = 300,
    seed: int = 0,
    extra_edges: Optional[Sequence[ProbEdge]] = None,
) -> float:
    """Monte Carlo estimate of ``Inf(S, T)``.

    ``targets=None`` counts every activated node (classic untargeted
    influence spread); otherwise only activations inside the target set
    count, which is the paper's targeted-marketing objective.
    """
    if num_samples < 1:
        raise ValueError("num_samples must be positive")
    rng = random.Random(seed)
    target_set = set(targets) if targets is not None else None
    total = 0
    extra = list(extra_edges) if extra_edges else None
    for _ in range(num_samples):
        active = simulate_cascade(graph, sources, rng, extra)
        if target_set is None:
            total += len(active)
        else:
            total += len(active & target_set)
    return total / num_samples
