"""Catalog schema of the persistent reliability index.

One SQLite database (``catalog.sqlite3``) describes everything in a
store directory; the heavyweight payloads — bit-packed world-batch
word matrices — live next to it as plain ``.npy`` files that are
memory-mapped on load.  Three tables:

``meta``
    Key/value pairs, most importantly ``schema_version``.  A store
    whose version differs from :data:`SCHEMA_VERSION` is **refused** at
    open (:class:`~repro.index.store.SchemaMismatchError`) — the code
    never guesses at an unknown layout, so a mismatched store can never
    be corrupted by a newer or older reader.
``batches``
    One row per persisted world batch, keyed
    ``(graph_hash, num_samples, seed)`` — the graph *content* hash
    (:meth:`repro.graph.UncertainGraph.content_hash`), not the
    in-process ``version`` counter, so the catalog survives restarts
    and two distinct graphs can never collide.  ``nbytes`` is the exact
    on-disk size of the finished ``.npy`` file; a file that does not
    match is a torn write and is treated as absent.
``results``
    The exact-match result cache: one row per
    ``(graph_hash, estimator, source, target, num_samples, seed)``
    with the float64 estimate.  Estimates on this key are
    deterministic, so a hit is bit-for-bit what recomputation would
    produce.
"""

from __future__ import annotations

#: Version of the on-disk layout.  Bump on any incompatible change to
#: the tables below or to the batch-file format; old stores are then
#: refused (never migrated in place silently, never corrupted).
SCHEMA_VERSION = 1

#: DDL executed when a new catalog is created.
SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS batches (
    graph_hash  TEXT    NOT NULL,
    num_samples INTEGER NOT NULL,
    seed        INTEGER NOT NULL,
    num_edges   INTEGER NOT NULL,
    num_words   INTEGER NOT NULL,
    filename    TEXT    NOT NULL,
    nbytes      INTEGER NOT NULL,
    created_at  REAL    NOT NULL,
    PRIMARY KEY (graph_hash, num_samples, seed)
);

CREATE TABLE IF NOT EXISTS results (
    graph_hash  TEXT    NOT NULL,
    estimator   TEXT    NOT NULL,
    source      INTEGER NOT NULL,
    target      INTEGER NOT NULL,
    num_samples INTEGER NOT NULL,
    seed        INTEGER NOT NULL,
    value       REAL    NOT NULL,
    created_at  REAL    NOT NULL,
    PRIMARY KEY (graph_hash, estimator, source, target, num_samples, seed)
);

CREATE INDEX IF NOT EXISTS idx_batches_hash ON batches (graph_hash);
CREATE INDEX IF NOT EXISTS idx_results_hash ON results (graph_hash);
"""
