"""Persistent reliability index: mmap world batches + SQLite catalog.

An :class:`IndexStore` is a directory::

    <root>/
      catalog.sqlite3      relational catalog (see repro.index.schema)
      .lock                process-level writer lock (flock)
      batches/
        <hash>-Z<Z>-s<seed>.npy   bit-packed (num_edges, W) coin words

Everything is keyed by the graph **content hash**
(:meth:`repro.graph.UncertainGraph.content_hash`), never the
in-process ``version`` counter, so the store survives restarts and two
distinct graph objects can never alias each other's entries.

Robustness discipline
---------------------
* **Atomic batch writes.**  A batch file is written to a ``.tmp`` name,
  fsynced, then ``os.replace``-d into place, and its catalog row is
  inserted only after the rename — at no point can a reader observe a
  cataloged-but-incomplete file.  A crash leaves either a ``.tmp``
  orphan or an uncataloged final file; both are invisible to readers
  and reaped by :meth:`IndexStore.vacuum`.
* **Refuse, don't corrupt.**  A catalog whose ``schema_version``
  differs from :data:`~repro.index.schema.SCHEMA_VERSION` raises
  :class:`SchemaMismatchError` at open and is left untouched.
* **Detect, then resample.**  :meth:`IndexStore.load_batch` validates
  size, dtype and shape against the catalog row before trusting a
  file; anything torn or truncated is pruned and reported as a miss,
  so callers transparently fall back to fresh sampling.
* **One writer at a time.**  Batch persists take an ``flock`` on
  ``<root>/.lock``; concurrent writers queue up to ``lock_timeout_s``
  and then fail with :class:`StoreLockTimeout` instead of interleaving.
* **Typed failures.**  Every catalog operation translates raw
  ``sqlite3`` errors (e.g. ``database is locked`` under multi-process
  result writes) into :class:`StoreError`, and a closed store raises
  ``StoreError('store is closed')`` instead of ``AttributeError`` —
  callers that treat persistence as best-effort only ever need to
  catch one exception type.
"""

from __future__ import annotations

import contextlib
import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from types import TracebackType
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Type, Union

import numpy as np

from ..analysis import sanitize
from ..faults import fault_point
from .schema import SCHEMA, SCHEMA_VERSION

try:  # pragma: no cover - always available on the POSIX hosts CI runs
    import fcntl
    _HAVE_FLOCK = True
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]
    _HAVE_FLOCK = False

Pair = Tuple[int, int]

#: How long :meth:`IndexStore.save_batch` waits for the writer lock by
#: default before giving up with :class:`StoreLockTimeout`.
DEFAULT_LOCK_TIMEOUT_S = 10.0

_LOCK_POLL_S = 0.01


class StoreError(Exception):
    """Base class for persistent-index failures."""


class SchemaMismatchError(StoreError):
    """The on-disk catalog uses a different schema version.

    Raised at :class:`IndexStore` open; the store is left byte-for-byte
    untouched so the matching code version can still read it.
    """


class StoreLockTimeout(StoreError):
    """Another process held the writer lock for longer than the timeout."""


@dataclass
class StoreCounters:
    """In-process hit/miss accounting (what ``/healthz`` scrapes).

    Counters describe *this process's* traffic against the store, not
    the catalog's lifetime; catalog-level totals come from
    :meth:`IndexStore.stats`.
    """

    batch_hits: int = 0
    batch_misses: int = 0
    batch_stores: int = 0
    result_hits: int = 0
    result_misses: int = 0
    result_stores: int = 0
    corrupt_batches: int = 0
    #: Store operations that raised :class:`StoreError` and were
    #: absorbed best-effort by a caller (lock timeouts, catalog write
    #: contention, reads against a broken catalog).  A non-zero value
    #: means serving fell back to recomputation, never a wrong answer.
    save_failures: int = 0

    def as_dict(self) -> dict:
        """Plain-dict view for JSON surfaces."""
        return {
            "batch_hits": self.batch_hits,
            "batch_misses": self.batch_misses,
            "batch_stores": self.batch_stores,
            "result_hits": self.result_hits,
            "result_misses": self.result_misses,
            "result_stores": self.result_stores,
            "corrupt_batches": self.corrupt_batches,
            "save_failures": self.save_failures,
        }


@dataclass
class StoreStats:
    """Catalog-level totals of one store directory."""

    path: str
    schema_version: int
    num_batches: int
    num_results: int
    batch_bytes: int
    counters: StoreCounters = field(default_factory=StoreCounters)

    def as_dict(self) -> dict:
        """Plain-dict view for JSON surfaces (``/healthz``, CLI)."""
        return {
            "path": self.path,
            "schema_version": self.schema_version,
            "num_batches": self.num_batches,
            "num_results": self.num_results,
            "batch_bytes": self.batch_bytes,
            "counters": self.counters.as_dict(),
        }


@dataclass
class VacuumReport:
    """What :meth:`IndexStore.vacuum` cleaned up."""

    removed_tmp_files: int = 0
    removed_orphan_files: int = 0
    pruned_rows: int = 0

    def as_dict(self) -> dict:
        """Plain-dict view for the CLI."""
        return {
            "removed_tmp_files": self.removed_tmp_files,
            "removed_orphan_files": self.removed_orphan_files,
            "pruned_rows": self.pruned_rows,
        }


class IndexStore:
    """On-disk reliability index: world batches + exact-match results.

    Parameters
    ----------
    root : str or Path
        Store directory; created (with parents) when absent.
    lock_timeout_s : float, optional
        How long batch persists wait for the process-level writer lock
        before raising :class:`StoreLockTimeout`.

    Raises
    ------
    SchemaMismatchError
        The directory holds a catalog with a different schema version;
        it is refused unmodified.

    Examples
    --------
    >>> import tempfile
    >>> from repro.graph import UncertainGraph
    >>> from repro.api import Session
    >>> from repro.index import IndexStore
    >>> g = UncertainGraph.from_edges([(0, 1, 0.9), (1, 2, 0.6)])
    >>> with tempfile.TemporaryDirectory() as root:
    ...     with IndexStore(root) as store:
    ...         warm = Session(g, seed=3, store=store)
    ...         first = warm.reliability(0, target=2, samples=2000).value
    ...     with IndexStore(root) as store:  # "restart": same answers
    ...         again = Session(g, seed=3, store=store)
    ...         second = again.reliability(0, target=2, samples=2000).value
    >>> first == second
    True
    """

    def __init__(
        self,
        root: Union[str, Path],
        lock_timeout_s: float = DEFAULT_LOCK_TIMEOUT_S,
    ) -> None:
        self.root = Path(root)
        self.lock_timeout_s = lock_timeout_s
        self.counters = StoreCounters()
        self.root.mkdir(parents=True, exist_ok=True)
        self.batches_dir = self.root / "batches"
        self.batches_dir.mkdir(exist_ok=True)
        self._lock_path = self.root / ".lock"
        self._mutex = threading.RLock()
        # Sanitizer-mode race detector on the *write* paths only: reads
        # (stats/list_batches/load_batch) are sanctioned cross-thread —
        # /healthz reports store stats from the event-loop thread while
        # the serving worker owns the writes.
        self._write_affinity = sanitize.ThreadAffinity(
            f"IndexStore({self.root})"
        )
        self._conn = sqlite3.connect(
            self.root / "catalog.sqlite3",
            check_same_thread=False,
            isolation_level=None,
        )
        try:
            self._open_catalog()
        except BaseException:
            self._conn.close()
            raise

    def _open_catalog(self) -> None:
        """Create a fresh catalog or verify an existing one's version."""
        conn = self._conn
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            has_meta = conn.execute(
                "SELECT 1 FROM sqlite_master WHERE type='table' AND name='meta'"
            ).fetchone()
        except sqlite3.DatabaseError as error:
            raise StoreError(
                f"{self.root}: catalog is not a SQLite database ({error})"
            ) from None
        if has_meta is None:
            conn.executescript(SCHEMA)
            conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                ("schema_version", str(SCHEMA_VERSION)),
            )
            return
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        found = row[0] if row is not None else "<missing>"
        if found != str(SCHEMA_VERSION):
            raise SchemaMismatchError(
                f"{self.root}: catalog schema version {found} != supported "
                f"{SCHEMA_VERSION}; refusing to touch it (open it with a "
                f"matching repro version, or point at a fresh directory)"
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the catalog connection (idempotent)."""
        with self._mutex:
            if self._conn is not None:
                self._conn.close()
                self._conn = None  # type: ignore[assignment]

    def __enter__(self) -> "IndexStore":
        """Enter a context manager scope; returns self."""
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        """Close the store on context exit."""
        self.close()

    @contextlib.contextmanager
    def _catalog_op(self, operation: str) -> Iterator[sqlite3.Connection]:
        """Serialized catalog access with typed failures.

        Yields the live connection under the store mutex; raises
        :class:`StoreError` when the store is closed, and translates
        any ``sqlite3`` error (``database is locked``, disk I/O, …)
        raised in the body into :class:`StoreError` so callers treating
        persistence as best-effort can catch one exception type.
        """
        with self._mutex:
            conn = self._conn
            if conn is None:
                raise StoreError(f"{self.root}: store is closed")
            fault_point("store.catalog", StoreError)
            try:
                yield conn
            except sqlite3.Error as error:
                raise StoreError(
                    f"{self.root}: {operation} failed ({error})"
                ) from error

    # ------------------------------------------------------------------
    # writer lock
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def write_lock(self, timeout_s: Optional[float] = None) -> Iterator[None]:
        """Hold the process-level writer lock for the ``with`` body.

        The lock is an ``flock`` on ``<root>/.lock`` — advisory,
        per-file-descriptor, so two :class:`IndexStore` objects exclude
        each other whether they live in one process or several.  On
        platforms without ``fcntl`` the lock degrades to a no-op (the
        atomic rename discipline still keeps readers safe).
        """
        if timeout_s is None:
            timeout_s = self.lock_timeout_s
        if not _HAVE_FLOCK:  # pragma: no cover - non-POSIX fallback
            yield
            return
        fd = os.open(self._lock_path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            deadline = time.monotonic() + timeout_s
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    break
                except OSError:
                    if time.monotonic() >= deadline:
                        raise StoreLockTimeout(
                            f"{self.root}: another writer held the store "
                            f"lock for more than {timeout_s:.1f}s"
                        ) from None
                    time.sleep(_LOCK_POLL_S)
            try:
                yield
            finally:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    # world batches
    # ------------------------------------------------------------------
    def _batch_filename(self, graph_hash: str, num_samples: int, seed: int) -> str:
        # The full hash goes into the name: a truncated prefix would let
        # two graphs with colliding prefixes and the same (Z, seed)
        # silently clobber each other's files via os.replace.
        return f"{graph_hash}-Z{num_samples}-s{seed}.npy"

    def load_batch(
        self,
        graph_hash: str,
        num_samples: int,
        seed: int,
        expected_edges: Optional[int] = None,
    ) -> Optional[np.ndarray]:
        """Memory-map the stored coin words for ``(hash, Z, seed)``.

        Returns the read-only ``(num_edges, W)`` uint64 memmap, or
        ``None`` on a miss.  A cataloged batch whose file is missing,
        truncated, mis-shaped, or inconsistent with ``expected_edges``
        is **pruned** (row dropped, file deleted best-effort), counted
        in :attr:`StoreCounters.corrupt_batches`, and reported as a
        miss — the caller resamples and the store heals itself.
        """
        fault_point("store.load_batch", StoreError)
        with self._catalog_op("batch lookup") as conn:
            row = conn.execute(
                "SELECT filename, num_edges, num_words, nbytes FROM batches "
                "WHERE graph_hash = ? AND num_samples = ? AND seed = ?",
                (graph_hash, num_samples, seed),
            ).fetchone()
        if row is None:
            self.counters.batch_misses += 1
            return None
        filename, num_edges, width, nbytes = row
        path = self.batches_dir / filename
        words: Optional[np.ndarray] = None
        try:
            if path.stat().st_size == nbytes:
                words = np.load(path, mmap_mode="r", allow_pickle=False)
        except (OSError, ValueError):
            words = None
        if words is not None and (
            words.dtype != np.uint64
            or words.ndim != 2
            or words.shape != (num_edges, width)
            or (expected_edges is not None and num_edges != expected_edges)
        ):
            words = None
        if words is None:
            self._prune_batch(graph_hash, num_samples, seed, path)
            self.counters.corrupt_batches += 1
            self.counters.batch_misses += 1
            return None
        self.counters.batch_hits += 1
        return words

    def _prune_batch(
        self, graph_hash: str, num_samples: int, seed: int, path: Path
    ) -> None:
        """Drop a bad batch's catalog row and file (best-effort)."""
        with self._catalog_op("batch prune") as conn:
            conn.execute(
                "DELETE FROM batches "
                "WHERE graph_hash = ? AND num_samples = ? AND seed = ?",
                (graph_hash, num_samples, seed),
            )
        with contextlib.suppress(OSError):
            path.unlink()

    def save_batch(
        self,
        graph_hash: str,
        num_samples: int,
        seed: int,
        words: np.ndarray,
    ) -> bool:
        """Persist one batch's coin words; returns False if already stored.

        Write-then-rename: the ``.npy`` payload lands under a ``.tmp``
        name, is fsynced, atomically renamed, and only then cataloged —
        a crash at any point leaves the store consistent.  Serialized
        across processes by :meth:`write_lock`.
        """
        self._write_affinity.check("IndexStore.save_batch")
        fault_point("store.save_batch", StoreError)
        if words.dtype != np.uint64 or words.ndim != 2:
            raise ValueError("batch words must be a 2-D uint64 array")
        filename = self._batch_filename(graph_hash, num_samples, seed)
        path = self.batches_dir / filename
        with self.write_lock():
            with self._catalog_op("batch lookup") as conn:
                exists = conn.execute(
                    "SELECT 1 FROM batches "
                    "WHERE graph_hash = ? AND num_samples = ? AND seed = ?",
                    (graph_hash, num_samples, seed),
                ).fetchone()
            if exists is not None:
                return False
            tmp = path.with_name(f"{filename}.tmp.{os.getpid()}")
            try:
                with open(tmp, "wb") as fh:
                    np.save(fh, np.ascontiguousarray(words),
                            allow_pickle=False)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, path)
            finally:
                with contextlib.suppress(OSError):
                    tmp.unlink()
            self._fsync_dir(self.batches_dir)
            nbytes = path.stat().st_size
            with self._catalog_op("batch catalog insert") as conn:
                conn.execute(
                    "INSERT OR REPLACE INTO batches (graph_hash, num_samples, "
                    "seed, num_edges, num_words, filename, nbytes, created_at) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    (graph_hash, num_samples, seed, int(words.shape[0]),
                     int(words.shape[1]), filename, nbytes,
                     # catalog timestamp, not a timing
                     time.time()),  # repro-check: disable=REP005
                )
        self.counters.batch_stores += 1
        return True

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        """Make a rename durable by fsyncing the containing directory."""
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - exotic filesystems
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - exotic filesystems
            pass
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    # exact-match result cache
    # ------------------------------------------------------------------
    def get_results(
        self,
        graph_hash: str,
        estimator: str,
        pairs: Iterable[Pair],
        num_samples: int,
        seed: int,
    ) -> Dict[Pair, float]:
        """Cached values for exactly-matching pairs (missing pairs absent).

        Counts one hit or miss per *distinct* requested pair.
        """
        found: Dict[Pair, float] = {}
        distinct = list(dict.fromkeys(pairs))
        with self._catalog_op("result-cache read") as conn:
            for s, t in distinct:
                row = conn.execute(
                    "SELECT value FROM results WHERE graph_hash = ? AND "
                    "estimator = ? AND source = ? AND target = ? AND "
                    "num_samples = ? AND seed = ?",
                    (graph_hash, estimator, s, t, num_samples, seed),
                ).fetchone()
                if row is not None:
                    found[(s, t)] = row[0]
        self.counters.result_hits += len(found)
        self.counters.result_misses += len(distinct) - len(found)
        return found

    def put_results(
        self,
        graph_hash: str,
        estimator: str,
        values: Dict[Pair, float],
        num_samples: int,
        seed: int,
    ) -> None:
        """Cache freshly computed ``(s, t) -> value`` entries."""
        self._write_affinity.check("IndexStore.put_results")
        if not values:
            return
        # Catalog timestamp (what `repro index inspect` shows), not a
        # timing measurement — wall clock is the point here.
        now = time.time()  # repro-check: disable=REP005
        rows = [
            (graph_hash, estimator, s, t, num_samples, seed, value, now)
            for (s, t), value in values.items()
        ]
        with self._catalog_op("result-cache write") as conn:
            conn.executemany(
                "INSERT OR REPLACE INTO results (graph_hash, estimator, "
                "source, target, num_samples, seed, value, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                rows,
            )
        self.counters.result_stores += len(rows)

    def clear_results(self, graph_hash: Optional[str] = None) -> int:
        """Drop cached results (all, or one graph's); returns rows removed.

        The result cache is keyed by content hash, so a graph swap
        invalidates *implicitly* — new hash, new namespace.  This
        explicit form exists for operators who want stale namespaces
        gone (``repro index vacuum --drop-results``) and for tests.
        """
        self._write_affinity.check("IndexStore.clear_results")
        with self._catalog_op("result-cache clear") as conn:
            if graph_hash is None:
                cursor = conn.execute("DELETE FROM results")
            else:
                cursor = conn.execute(
                    "DELETE FROM results WHERE graph_hash = ?", (graph_hash,)
                )
            return cursor.rowcount

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def stats(self) -> StoreStats:
        """Catalog totals plus this process's traffic counters."""
        with self._catalog_op("stats") as conn:
            num_batches = conn.execute(
                "SELECT COUNT(*) FROM batches"
            ).fetchone()[0]
            num_results = conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()[0]
            batch_bytes = conn.execute(
                "SELECT COALESCE(SUM(nbytes), 0) FROM batches"
            ).fetchone()[0]
        return StoreStats(
            path=str(self.root),
            schema_version=SCHEMA_VERSION,
            num_batches=num_batches,
            num_results=num_results,
            batch_bytes=batch_bytes,
            counters=self.counters,
        )

    def list_batches(self) -> List[dict]:
        """Catalog rows of every stored batch (for ``repro index inspect``)."""
        with self._catalog_op("batch listing") as conn:
            rows = conn.execute(
                "SELECT graph_hash, num_samples, seed, num_edges, num_words, "
                "filename, nbytes, created_at FROM batches "
                "ORDER BY graph_hash, num_samples, seed"
            ).fetchall()
        keys = ("graph_hash", "num_samples", "seed", "num_edges",
                "num_words", "filename", "nbytes", "created_at")
        return [dict(zip(keys, row, strict=True)) for row in rows]

    def vacuum(self) -> VacuumReport:
        """Reap crash debris and reclaim space.

        Removes ``.tmp`` leftovers and orphan batch files (written but
        never cataloged), prunes catalog rows whose files are missing
        or size-mismatched, and ``VACUUM``-s the catalog.  Safe to run
        while readers are active; takes the writer lock.
        """
        self._write_affinity.check("IndexStore.vacuum")
        report = VacuumReport()
        with self.write_lock():
            referenced = set()
            for row in self.list_batches():
                path = self.batches_dir / row["filename"]
                try:
                    ok = path.stat().st_size == row["nbytes"]
                except OSError:
                    ok = False
                if ok:
                    referenced.add(row["filename"])
                else:
                    self._prune_batch(
                        row["graph_hash"], row["num_samples"], row["seed"],
                        path,
                    )
                    report.pruned_rows += 1
            for path in self.batches_dir.iterdir():
                if path.name in referenced:
                    continue
                is_tmp = ".tmp." in path.name
                with contextlib.suppress(OSError):
                    path.unlink()
                    if is_tmp:
                        report.removed_tmp_files += 1
                    else:
                        report.removed_orphan_files += 1
            with self._catalog_op("vacuum") as conn:
                conn.execute("VACUUM")
        return report

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"<IndexStore {str(self.root)!r} batches={stats.num_batches} "
            f"results={stats.num_results}>"
        )


def describe_store(root: Union[str, Path]) -> str:
    """Human-readable one-stop summary (``repro index inspect``)."""
    with IndexStore(root) as store:
        stats = store.stats()
        lines = [
            f"store:          {stats.path}",
            f"schema version: {stats.schema_version}",
            f"world batches:  {stats.num_batches} "
            f"({stats.batch_bytes / 1e6:.1f} MB)",
            f"cached results: {stats.num_results}",
        ]
        for row in store.list_batches():
            lines.append(
                f"  {row['graph_hash'][:12]}…  Z={row['num_samples']:<7} "
                f"seed={row['seed']:<6} edges={row['num_edges']:<8} "
                f"{row['nbytes'] / 1e6:.1f} MB"
            )
        return "\n".join(lines)


def _json_default(value: object) -> str:  # pragma: no cover - debug helper
    return str(value)


def dump_stats_json(root: Union[str, Path]) -> str:
    """JSON form of :func:`describe_store` (``repro index inspect --json``)."""
    with IndexStore(root) as store:
        payload = store.stats().as_dict()
        payload["batches"] = store.list_batches()
    return json.dumps(payload, indent=2, default=_json_default)
