"""Persistent reliability index + exact-match result cache.

Offline indexing makes repeat-heavy traffic cheap: most production
queries over an uncertain graph ask for pairs the process has answered
before, over worlds it has already sampled (the observation behind the
offline reliability indexing of Sasaki et al., "Efficient Network
Reliability Computation in Uncertain Graphs").  This package is the
disk layer that lets those answers survive process death:

* :class:`IndexStore` — a store directory holding memory-mapped
  ``.npy`` world-batch files plus a SQLite catalog, keyed by the graph
  **content hash** (:meth:`repro.graph.UncertainGraph.content_hash`),
  ``Z`` and seed, with an exact-match
  ``(estimator, s, t, Z, seed) -> value`` result cache.
* ``Session(graph, store=...)`` (:mod:`repro.api`) — the session's
  world-batch tiering becomes memory → mmap → sample, and shared-world
  reliability queries check the result cache first; newly sampled
  batches and freshly computed values are persisted back.
* ``repro serve --store`` / ``repro index build|inspect|vacuum`` — the
  serving and operational surface.

Everything is parity-gated: a store-backed session is bit-for-bit
identical to a cold one (``tests/test_index_session.py``,
``benchmarks/bench_index_warm.py``), and crash consistency is CI-gated
(``tests/test_index_durability.py``).
"""

from .breaker import CircuitBreaker
from .schema import SCHEMA, SCHEMA_VERSION
from .store import (
    DEFAULT_LOCK_TIMEOUT_S,
    IndexStore,
    SchemaMismatchError,
    StoreCounters,
    StoreError,
    StoreLockTimeout,
    StoreStats,
    VacuumReport,
    describe_store,
    dump_stats_json,
)

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "CircuitBreaker",
    "DEFAULT_LOCK_TIMEOUT_S",
    "IndexStore",
    "SchemaMismatchError",
    "StoreCounters",
    "StoreError",
    "StoreLockTimeout",
    "StoreStats",
    "VacuumReport",
    "describe_store",
    "dump_stats_json",
]
