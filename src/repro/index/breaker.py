"""Circuit breaker guarding the Session -> IndexStore degradation path.

PR 6 made every store interaction best-effort: reads degrade to
misses, writes are dropped, and ``save_failures`` counts what was
lost.  That contract survives a flaky store but not a *dead* one —
each request still pays the full store round-trip (and its timeout)
before degrading.  The breaker sits in front of the session's store
wrappers and converts consecutive failures into a fast local "skip
the store" decision:

* **closed** — normal operation; every call goes to the store.
* **open** — after ``failure_threshold`` consecutive failures; calls
  are skipped without touching the store until the reset timeout
  elapses.  Skipped reads are misses, skipped writes are dropped —
  exactly the degraded behavior the wrappers already define, minus
  the latency.
* **half-open** — one probe call is allowed through after the
  timeout; success closes the breaker, failure reopens it with the
  timeout doubled (capped at ``max_reset_timeout_s``).

The clock is injectable (default :func:`time.monotonic`) so tests
drive the open -> half-open -> closed ladder deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Union

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probe and backoff."""

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 1.0,
        max_reset_timeout_s: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        """Create a closed breaker.

        ``failure_threshold`` consecutive failures open it;
        ``reset_timeout_s`` is the initial open interval, doubled on
        each failed probe up to ``max_reset_timeout_s``.
        """
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold!r}"
            )
        if reset_timeout_s <= 0.0:
            raise ValueError(
                f"reset_timeout_s must be > 0, got {reset_timeout_s!r}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.max_reset_timeout_s = max(max_reset_timeout_s, reset_timeout_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._current_timeout_s = reset_timeout_s
        self._opened_at = 0.0
        self._opens = 0
        self._skips = 0

    @property
    def state(self) -> str:
        """Current state: ``closed``, ``open``, or ``half_open``."""
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """Return whether the caller may touch the store right now.

        Open and past the reset timeout, the breaker transitions to
        half-open and admits this call as the probe; open and within
        the timeout it returns ``False`` (counted as a skip).
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at >= self._current_timeout_s:
                    self._state = HALF_OPEN
                    return True
                self._skips += 1
                return False
            # Half-open: one probe is already in flight; further calls
            # keep skipping until it reports success or failure.
            self._skips += 1
            return False

    def record_success(self) -> None:
        """Report a successful store call: close and reset the backoff."""
        with self._lock:
            self._state = CLOSED
            self._consecutive_failures = 0
            self._current_timeout_s = self.reset_timeout_s

    def record_failure(self) -> None:
        """Report a failed store call; may open (or reopen) the breaker."""
        with self._lock:
            if self._state == HALF_OPEN:
                # Failed probe: reopen with the backoff doubled.
                self._current_timeout_s = min(
                    self._current_timeout_s * 2.0, self.max_reset_timeout_s
                )
                self._trip()
                return
            self._consecutive_failures += 1
            if (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._trip()

    def _trip(self) -> None:
        """Open the breaker (caller holds the lock)."""
        self._state = OPEN
        self._opened_at = self._clock()
        self._opens += 1

    def stats(self) -> Dict[str, Union[str, int, float]]:
        """Return a JSON-friendly snapshot for ``store_stats()``/healthz."""
        with self._lock:
            remaining = 0.0
            if self._state == OPEN:
                remaining = max(
                    0.0,
                    self._current_timeout_s - (self._clock() - self._opened_at),
                )
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "opens": self._opens,
                "skips": self._skips,
                "reset_timeout_s": self._current_timeout_s,
                "open_remaining_s": remaining,
            }
