"""Deterministic fault-injection registry with named seams.

The serving and persistence layers carry *fault seams*: named call
sites (``fault_point("store.catalog", ...)``) where this registry may
inject a failure or latency.  The registry follows the
:mod:`repro.analysis.sanitize` arm/disarm pattern — disarmed (the
default), :func:`fault_point` is a single module-global check and an
immediate return, so production code pays no measurable overhead and
behaves byte-identically to a build without seams.

Armed, every injected fault is drawn from a seeded
:class:`random.Random`, which extends the repo's determinism contract
to chaos runs: the same profile string (same seed, same specs) against
the same workload fires the same faults.  Two ways to arm:

* the ``REPRO_FAULTS`` environment variable, parsed at import time —
  e.g. ``REPRO_FAULTS="seed=7;store.*:p=0.05,latency_ms=2"``;
* programmatically via :func:`arm` / :func:`disarm` or the composable
  :func:`inject` context manager used throughout the test suite.

Profile syntax (``;``-separated clauses)::

    seed=<int>                         seed for all per-spec RNGs
    <pattern>                          always fail at matching seams
    <pattern>:k=v,k=v                  keys: p, count, latency_ms, fail

``pattern`` is an :mod:`fnmatch`-style glob over seam names
(``store.*``), ``p`` the per-call fire probability, ``count`` a cap on
total fires, ``latency_ms`` a sleep injected before returning or
raising, and ``fail=0`` makes a spec latency-only.  Specs are evaluated
in profile order; the first *failing* match stops evaluation (latency
from earlier matching specs still applies).

Exact-pattern specs give the strongest reproducibility: each seam draw
consumes from that spec's own RNG stream.  A wildcard spec shares one
RNG across every seam it matches, so under concurrency the
interleaving decides *which* call fires — each call still fires with
probability ``p``, and single-threaded runs remain bit-for-bit
reproducible.
"""

from __future__ import annotations

import fnmatch
import hashlib
import os
import random
import re
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type, Union

ENV_VAR = "REPRO_FAULTS"

#: Seam names are static dotted identifiers (``layer.operation``); spec
#: patterns may additionally use fnmatch wildcards.
_PATTERN_RE = re.compile(r"^[a-z0-9_*?\[\]]+(\.[a-z0-9_*?\[\]]+)*$")

_SPEC_KEYS = ("p", "count", "latency_ms", "fail")


class FaultError(RuntimeError):
    """Default error raised when an armed seam fires.

    Seams that sit inside an existing error-handling contract pass a
    more specific class (``fault_point(name, error=StoreError)``) so
    the injected failure exercises the same recovery path a real one
    would.
    """


class ProfileError(ValueError):
    """Raised when a ``REPRO_FAULTS`` profile string cannot be parsed."""


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: where, how often, and what to inject.

    ``pattern`` globs over seam names; ``p`` is the per-call fire
    probability; ``count`` caps total fires (``None`` = unlimited);
    ``latency_ms`` sleeps before returning or raising; ``fail=False``
    makes the spec latency-only.
    """

    pattern: str
    p: float = 1.0
    count: Optional[int] = None
    latency_ms: float = 0.0
    fail: bool = True

    def __post_init__(self) -> None:
        if not _PATTERN_RE.match(self.pattern):
            raise ProfileError(
                f"invalid seam pattern {self.pattern!r}: expected dotted "
                "lowercase identifiers, optionally with fnmatch wildcards"
            )
        if not 0.0 <= self.p <= 1.0:
            raise ProfileError(f"fault probability must be in [0, 1], got {self.p!r}")
        if self.count is not None and self.count < 1:
            raise ProfileError(f"fault count must be >= 1, got {self.count!r}")
        if self.latency_ms < 0.0:
            raise ProfileError(
                f"fault latency_ms must be >= 0, got {self.latency_ms!r}"
            )
        if not self.fail and self.latency_ms == 0.0:
            raise ProfileError(
                f"spec {self.pattern!r} with fail=0 and no latency injects nothing"
            )


class _ActiveSpec:
    """Runtime state for one armed spec: its RNG stream and fire budget."""

    __slots__ = ("spec", "rng", "remaining")

    def __init__(self, spec: FaultSpec, seed: int, index: int) -> None:
        self.spec = spec
        self.rng = _derive_rng(seed, spec.pattern, index)
        self.remaining = spec.count  # None = unlimited


def _derive_rng(seed: int, pattern: str, index: int) -> random.Random:
    """Give each spec its own deterministic stream, stable across runs.

    ``hashlib`` rather than ``hash()``: the builtin is salted per
    process, which would break same-seed reproducibility across runs.
    """
    digest = hashlib.sha256(f"{seed}|{index}|{pattern}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


# Module-global armed flag, read unlocked on the hot path.  Arming and
# disarming happen under _LOCK; the flag flip is atomic in CPython and
# a stale read during an arm/disarm race (test-only territory) costs at
# worst one locked re-check inside _hit.
_ARMED = False
_LOCK = threading.Lock()
_SPECS: Tuple[_ActiveSpec, ...] = ()
_SEED = 0
_FIRES: Dict[str, int] = {}


def fault_point(name: str, error: Optional[Type[BaseException]] = None) -> None:
    """Declare a named injection seam; no-op unless the registry is armed.

    Call sites pass a constant string literal for ``name`` (enforced
    statically by ``repro check`` rule REP006) and optionally the error
    class the surrounding contract expects, so disarmed calls allocate
    nothing.  Armed, a matching spec may sleep ``latency_ms`` and then
    raise ``error`` (default :class:`FaultError`).
    """
    if not _ARMED:
        return
    _hit(name, error)


def _hit(name: str, error: Optional[Type[BaseException]]) -> None:
    """Slow path of :func:`fault_point`: match specs, sleep, maybe raise."""
    latency_ms = 0.0
    fire_fail = False
    with _LOCK:
        if not _ARMED:  # disarmed between the unlocked check and here
            return
        for active in _SPECS:
            if active.remaining == 0:
                continue
            if not fnmatch.fnmatchcase(name, active.spec.pattern):
                continue
            if active.spec.p < 1.0 and active.rng.random() >= active.spec.p:
                continue
            if active.remaining is not None:
                active.remaining -= 1
            _FIRES[name] = _FIRES.get(name, 0) + 1
            latency_ms += active.spec.latency_ms
            if active.spec.fail:
                fire_fail = True
                break  # first failing match wins
    if latency_ms > 0.0:
        time.sleep(latency_ms / 1000.0)
    if fire_fail:
        raise (error or FaultError)(f"injected fault at seam {name!r}")


def parse_profile(text: str) -> Tuple[int, Tuple[FaultSpec, ...]]:
    """Parse a ``REPRO_FAULTS`` profile string into ``(seed, specs)``."""
    seed = 0
    specs: List[FaultSpec] = []
    for raw_clause in text.split(";"):
        clause = raw_clause.strip()
        if not clause:
            continue
        if clause.startswith("seed="):
            try:
                seed = int(clause[len("seed="):])
            except ValueError:
                raise ProfileError(f"invalid seed clause {clause!r}") from None
            continue
        pattern, _, raw_opts = clause.partition(":")
        options: Dict[str, Union[float, int, bool, None]] = {}
        if raw_opts:
            for raw_opt in raw_opts.split(","):
                key, sep, value = raw_opt.strip().partition("=")
                if not sep or key not in _SPEC_KEYS:
                    raise ProfileError(
                        f"invalid option {raw_opt!r} in clause {clause!r}: "
                        f"expected one of {', '.join(_SPEC_KEYS)}"
                    )
                try:
                    if key == "p":
                        options[key] = float(value)
                    elif key == "count":
                        options[key] = int(value)
                    elif key == "latency_ms":
                        options[key] = float(value)
                    else:  # fail
                        options[key] = _parse_bool(value)
                except ValueError as exc:
                    raise ProfileError(
                        f"invalid value for {key!r} in clause {clause!r}: {exc}"
                    ) from None
        specs.append(FaultSpec(pattern.strip(), **options))  # type: ignore[arg-type]
    return seed, tuple(specs)


def _parse_bool(value: str) -> bool:
    lowered = value.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"expected a boolean, got {value!r}")


def arm(
    profile: Union[str, Sequence[FaultSpec]],
    seed: Optional[int] = None,
) -> None:
    """Arm the registry with a profile string or a sequence of specs.

    A string is parsed with :func:`parse_profile` (its ``seed=`` clause
    applies unless overridden by the ``seed`` argument).  Arming
    replaces any previous specs and resets fire counters.
    """
    if isinstance(profile, str):
        parsed_seed, specs = parse_profile(profile)
        if seed is None:
            seed = parsed_seed
    else:
        specs = tuple(profile)
    if seed is None:
        seed = 0
    global _ARMED, _SPECS, _SEED
    with _LOCK:
        _SEED = seed
        _SPECS = tuple(
            _ActiveSpec(spec, seed, index) for index, spec in enumerate(specs)
        )
        _FIRES.clear()
        _ARMED = bool(_SPECS)


def disarm() -> None:
    """Disarm the registry: every seam returns to the zero-cost no-op."""
    global _ARMED, _SPECS
    with _LOCK:
        _ARMED = False
        _SPECS = ()
        _FIRES.clear()


def armed() -> bool:
    """Return whether any fault specs are currently armed."""
    return _ARMED


@contextmanager
def inject(
    pattern: str,
    *,
    p: float = 1.0,
    count: Optional[int] = None,
    latency_ms: float = 0.0,
    fail: bool = True,
    seed: Optional[int] = None,
    exclusive: bool = False,
) -> Iterator[FaultSpec]:
    """Arm one spec for the duration of a ``with`` block.

    Composes with whatever is already armed (nested ``inject`` blocks,
    an env profile); ``exclusive=True`` suspends the surrounding specs
    instead, for tests that assert exact fire sequences and must not
    inherit ambient chaos from ``REPRO_FAULTS``.  On exit the previous
    registry state is restored.
    """
    spec = FaultSpec(
        pattern, p=p, count=count, latency_ms=latency_ms, fail=fail
    )
    global _ARMED, _SPECS, _SEED
    with _LOCK:
        saved = (_ARMED, _SPECS, _SEED, dict(_FIRES))
        base_seed = _SEED if seed is None else seed
        prior = () if exclusive else _SPECS
        if exclusive:
            _FIRES.clear()
        _SEED = base_seed
        _SPECS = prior + (_ActiveSpec(spec, base_seed, len(prior)),)
        _ARMED = True
    try:
        yield spec
    finally:
        with _LOCK:
            _ARMED, _SPECS, _SEED = saved[0], saved[1], saved[2]
            _FIRES.clear()
            _FIRES.update(saved[3])


def seam_report() -> Dict[str, int]:
    """Return a copy of the per-seam fire counters."""
    with _LOCK:
        return dict(_FIRES)


def fires(name: Optional[str] = None) -> int:
    """Return fires at one seam, or total fires when ``name`` is None."""
    with _LOCK:
        if name is not None:
            return _FIRES.get(name, 0)
        return sum(_FIRES.values())


def reset_counters() -> None:
    """Zero the per-seam fire counters (specs and budgets unchanged)."""
    with _LOCK:
        _FIRES.clear()


def _arm_from_env() -> None:
    """Arm from ``REPRO_FAULTS`` at import; invalid profiles fail loudly."""
    text = os.environ.get(ENV_VAR, "")
    if text.strip():
        arm(text)


_arm_from_env()
