"""Deterministic fault injection for the serving and storage layers.

Public surface of the registry (see :mod:`repro.faults.registry` for
the full model): :func:`fault_point` marks a seam, :func:`arm` /
:func:`disarm` / :func:`inject` control what fires, and
:func:`seam_report` exposes the per-seam fire counters chaos tests
assert on.  Disarmed — the default — every seam is a single global
check, so production behavior is byte-identical to a build without
seams.

Registered seam families (rule ``REP006`` keeps the names literal and
statically enumerable): ``store.*`` (catalog and batch I/O),
``session.store.*`` (the session's best-effort store wrappers),
``session.delta.apply`` (streaming-update repair; firing it falls the
session back to evict-and-recompute, answers unchanged),
``serve.worker`` (coalescer batch execution), ``serve.http.*``
(client connections), and ``shard.*`` (the supervised pool's
transport: ``spawn``, ``heartbeat``, ``ipc.read``, ``ipc.write``).
"""

from .registry import (
    ENV_VAR,
    FaultError,
    FaultSpec,
    ProfileError,
    arm,
    armed,
    disarm,
    fault_point,
    fires,
    inject,
    parse_profile,
    reset_counters,
    seam_report,
)

__all__ = [
    "ENV_VAR",
    "FaultError",
    "FaultSpec",
    "ProfileError",
    "arm",
    "armed",
    "disarm",
    "fault_point",
    "fires",
    "inject",
    "parse_profile",
    "reset_counters",
    "seam_report",
]
