"""Visualization helpers (SVG network rendering)."""

from .svg import render_network_svg, save_network_svg

__all__ = ["render_network_svg", "save_network_svg"]
