"""SVG rendering of sensor networks and solutions (Figures 6/7 style).

Pure-string SVG generation — no plotting dependency.  Renders a
positioned uncertain graph with edge thickness proportional to link
probability, and overlays a solution's new edges as dashed highlights,
mirroring the paper's case-study figures.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..graph import UncertainGraph

Position = Tuple[float, float]
ProbEdge = Tuple[int, int, float]


def _scale_positions(
    positions: Dict[int, Position],
    width: int,
    height: int,
    margin: int,
) -> Dict[int, Position]:
    xs = [x for x, _ in positions.values()]
    ys = [y for _, y in positions.values()]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span_x = max(max_x - min_x, 1e-9)
    span_y = max(max_y - min_y, 1e-9)
    scaled = {}
    for node, (x, y) in positions.items():
        sx = margin + (x - min_x) / span_x * (width - 2 * margin)
        # SVG's y axis points down; flip so the map reads naturally.
        sy = height - margin - (y - min_y) / span_y * (height - 2 * margin)
        scaled[node] = (sx, sy)
    return scaled


def render_network_svg(
    graph: UncertainGraph,
    positions: Dict[int, Position],
    new_edges: Optional[Sequence[ProbEdge]] = None,
    highlight_nodes: Optional[Iterable[int]] = None,
    width: int = 640,
    height: int = 480,
    min_probability: float = 0.0,
) -> str:
    """Render the graph as an SVG document string.

    Existing edges are gray with width proportional to probability;
    ``new_edges`` are drawn dashed in red; ``highlight_nodes`` (e.g. the
    query's source and target) get a distinct fill.
    """
    margin = 24
    scaled = _scale_positions(positions, width, height, margin)
    highlights = set(highlight_nodes or ())
    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    drawn = set()
    for u, v, p in graph.edges():
        if p < min_probability or u not in scaled or v not in scaled:
            continue
        key = (min(u, v), max(u, v))
        if key in drawn:
            continue
        drawn.add(key)
        (x1, y1), (x2, y2) = scaled[u], scaled[v]
        stroke = 0.4 + 2.6 * p
        parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="#999" stroke-width="{stroke:.2f}" opacity="0.7"/>'
        )
    for u, v, _p in new_edges or ():
        if u not in scaled or v not in scaled:
            continue
        (x1, y1), (x2, y2) = scaled[u], scaled[v]
        parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="#d62728" stroke-width="2.5" stroke-dasharray="6,4"/>'
        )
    for node, (x, y) in scaled.items():
        fill = "#ff7f0e" if node in highlights else "#1f77b4"
        radius = 8 if node in highlights else 5
        parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{radius}" fill="{fill}"/>'
        )
        parts.append(
            f'<text x="{x + 7:.1f}" y="{y - 7:.1f}" font-size="9" '
            f'font-family="sans-serif" fill="#333">{node}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def save_network_svg(
    path: str,
    graph: UncertainGraph,
    positions: Dict[int, Position],
    new_edges: Optional[Sequence[ProbEdge]] = None,
    highlight_nodes: Optional[Iterable[int]] = None,
    **kwargs,
) -> None:
    """Render and write the SVG to ``path``."""
    svg = render_network_svg(
        graph, positions, new_edges=new_edges,
        highlight_nodes=highlight_nodes, **kwargs,
    )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(svg)
