"""Table 19: sensitivity to the s-t hop distance d.

Queries at exactly d hops.  Paper's shape: the original reliability
decreases with d; the gain peaks at mid distances (d=3-4) — close pairs
have little left to improve, distant pairs are hard to bridge under the
distance constraint — and running time falls off at the extremes.
"""


from repro.api import Session, Workload
from repro.experiments import (
    ResultTable,
    SingleStProtocol,
    compare_methods_single_st,
    default_estimator_factory,
)
from repro.queries import pairs_at_exact_distance

from _common import save_table
from repro import datasets

D_VALUES = [2, 3, 4, 5]
METHODS = ["be"]


def run():
    graph = datasets.load("as-topology", num_nodes=600, seed=0)
    table = ResultTable(
        "Table 19: varying query distance d (as-topology-like, k=5)",
        ["d", "Base reliability", "BE gain", "BE time (s)"],
    )
    # One session scores the base reliability of every d's workload:
    # all queries across all distances share one compiled plan and one
    # (Z=600, seed=99) world batch.
    eval_session = Session(graph, seed=99)
    per_d = {}
    for d in D_VALUES:
        queries = pairs_at_exact_distance(graph, d, 2, seed=47)
        results = eval_session.run(Workload.reliability(queries, samples=600))
        base = sum(r.values[0] for r in results) / len(queries)
        protocol = SingleStProtocol(
            k=5, zeta=0.5, r=15, l=15, evaluation_samples=500,
            estimator_factory=default_estimator_factory(120),
        )
        stats = compare_methods_single_st(graph, queries, METHODS, protocol)
        table.add_row(d, base, stats["be"].mean_gain, stats["be"].mean_seconds)
        per_d[d] = (base, stats)
    table.add_note(
        "paper: base reliability falls with d; gain peaks at d=3-4"
    )
    save_table(table, "table19_vary_query_distance")
    return per_d


def test_table19(benchmark):
    per_d = benchmark.pedantic(run, rounds=1, iterations=1)
    bases = [per_d[d][0] for d in D_VALUES]
    # Base reliability decreases with distance (up to noise).
    assert bases[0] >= bases[-1] - 0.05
    # The method still achieves non-trivial gains at mid distances.
    mid_gain = max(per_d[3][1]["be"].mean_gain, per_d[4][1]["be"].mean_gain)
    assert mid_gain >= -0.02
