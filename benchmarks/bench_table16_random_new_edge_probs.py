"""Table 16: per-edge random probabilities for new edges.

Instead of a fixed zeta, new-edge probabilities come from uniform ranges
or a truncated normal (the paper's N(0.5, 0.038)).  The paper's point:
the pipeline is agnostic to where new-edge probabilities come from — the
most reliable path machinery just consumes them — and results track the
distribution's mean.
"""


from repro.graph import (
    normal_new_edge_probability,
    uniform_new_edge_probability,
)
from repro.experiments import (
    ResultTable,
    SingleStProtocol,
    compare_methods_single_st,
    default_estimator_factory,
)

from _common import method_label, queries_for, save_table
from repro import datasets

METHODS = ["mrp", "ip", "be"]

MODELS = [
    ("rand(0, 1)", lambda: uniform_new_edge_probability(0.0, 1.0, seed=41)),
    ("rand(0.2, 0.6)", lambda: uniform_new_edge_probability(0.2, 0.6, seed=42)),
    ("rand(0.4, 0.8)", lambda: uniform_new_edge_probability(0.4, 0.8, seed=43)),
    ("N(0.5, 0.038)", lambda: normal_new_edge_probability(0.5, 0.038, seed=44)),
]


def run():
    graph = datasets.load("twitter", num_nodes=500, seed=0)
    queries = queries_for(graph, count=2, seed=37)
    table = ResultTable(
        "Table 16: random new-edge probabilities (twitter-like, k=5)",
        ["New-edge model", *[f"{method_label(m)} gain" for m in METHODS]],
    )
    results = {}
    for label, make_model in MODELS:
        protocol = SingleStProtocol(
            k=5, zeta=0.5, r=15, l=15, evaluation_samples=500,
            new_edge_prob=make_model(),
            estimator_factory=default_estimator_factory(120),
        )
        stats = compare_methods_single_st(graph, queries, METHODS, protocol)
        table.add_row(label, *[stats[m].mean_gain for m in METHODS])
        results[label] = stats
    table.add_note(
        "paper: BE works unchanged with per-edge probabilities; gains "
        "track the model's mean (rand(0.4,0.8) > N(0.5,.038) > rand(0,1) "
        "> rand(0.2,0.6))"
    )
    save_table(table, "table16_random_new_edge_probs")
    return results


def test_table16(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for label, stats in results.items():
        # The pipeline functions under every probability model.
        assert stats["be"].mean_gain >= -0.02
        assert stats["be"].mean_gain >= stats["mrp"].mean_gain - 0.07
    # Higher-mean model should produce at least as much gain as the
    # lower-mean one (0.4-0.8 vs 0.2-0.6).
    high = results["rand(0.4, 0.8)"]["be"].mean_gain
    low = results["rand(0.2, 0.6)"]["be"].mean_gain
    assert high >= low - 0.05
