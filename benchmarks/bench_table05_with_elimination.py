"""Table 5: all methods AFTER search-space elimination.

Same protocol as Table 4, but Algorithm 4 (r-relevant-node elimination)
runs first and every method selects from the reduced candidate set.  The
paper's findings: ~99% running-time reduction for Individual Top-k and
Hill Climbing at no accuracy loss, and *improved* accuracy for the
centrality/eigenvalue baselines (they now operate on a query-relevant
subspace).
"""


from repro.experiments import (
    ResultTable,
    SingleStProtocol,
    compare_methods_single_st,
    default_estimator_factory,
    elimination_timings,
)

from _common import method_label, queries_for, save_table
from repro import datasets

METHODS = ["topk", "hc", "degree", "betweenness", "eigen", "mrp", "ip", "be"]


def run():
    graph = datasets.load("lastfm", num_nodes=300, seed=0)
    queries = queries_for(graph, count=1, seed=5)
    protocol = SingleStProtocol(
        k=3,
        zeta=0.5,
        r=16,
        l=15,
        h=3,
        eliminate=True,
        evaluation_samples=600,
        estimator_factory=default_estimator_factory(100),
    )
    stats = compare_methods_single_st(graph, queries, METHODS, protocol)
    elim_seconds, candidates = elimination_timings(
        graph, queries, default_estimator_factory(100), r=16
    )
    table = ResultTable(
        "Table 5: reliability gain and running time AFTER search-space "
        "elimination (lastfm-like, k=3, zeta=0.5, r=16, l=15)",
        ["Method", "Reliability Gain", "Running Time (sec)"],
    )
    for method in METHODS:
        table.add_row(
            method_label(method),
            stats[method].mean_gain,
            stats[method].mean_seconds,
        )
    table.add_note(
        f"elimination itself: {elim_seconds:.2f}s, "
        f"~{candidates:.0f} candidate edges"
    )
    table.add_note(
        "paper (lastFM, k=10): topk 39184s -> 136s, hc 406512s -> 1256s, "
        "no accuracy loss; degree/eigen gains improve"
    )
    save_table(table, "table05_with_elimination")
    return stats


def test_table05(benchmark):
    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    # BE remains the quality winner among the fast methods.
    assert stats["be"].mean_gain >= stats["mrp"].mean_gain - 0.05
    # HC is still the slowest sampling-based method even after elimination.
    assert stats["hc"].mean_seconds > stats["be"].mean_seconds
    # Everything finishes quickly on the reduced space.
    for method in METHODS:
        assert stats[method].mean_seconds < 120


def test_elimination_speeds_up_enumerative_methods(benchmark):
    """The headline Table 4 -> Table 5 effect, measured directly."""

    def run_both():
        graph = datasets.load("lastfm", num_nodes=300, seed=0)
        queries = queries_for(graph, count=1, seed=5)
        shared = dict(
            k=3, zeta=0.5, r=16, l=15, h=3, evaluation_samples=400,
            estimator_factory=default_estimator_factory(100),
        )
        without = compare_methods_single_st(
            graph, queries, ["topk"],
            SingleStProtocol(eliminate=False, **shared),
        )
        with_elim = compare_methods_single_st(
            graph, queries, ["topk"],
            SingleStProtocol(eliminate=True, **shared),
        )
        return without["topk"], with_elim["topk"]

    before, after = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert after.mean_seconds < before.mean_seconds
    # No material accuracy loss (paper: none at all).
    assert after.mean_gain >= before.mean_gain - 0.1
