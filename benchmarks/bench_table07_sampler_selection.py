"""Table 7: MC vs RSS running time for top-k edge selection.

Runs HC / MRP / BE with a Monte Carlo selection estimator (paper: Z=500)
and with RSS (paper: Z=250) and compares per-method selection time.  The
paper reports up to 40% savings for RSS even though selection operates
on small path-induced subgraphs.
"""


from repro.experiments import (
    ResultTable,
    SingleStProtocol,
    compare_methods_single_st,
    default_estimator_factory,
    mc_estimator_factory,
)

from _common import queries_for, save_table
from repro import datasets

DATASETS = ["lastfm", "as-topology"]
METHODS = ["hc", "mrp", "be"]


def run():
    table = ResultTable(
        "Table 7: sampler comparison for top-k edge selection "
        "(k=3, r=12, l=12)",
        ["Dataset", "Sampler", "Z", "HC (s)", "MRP (s)", "BE (s)"],
    )
    rows = {}
    for name in DATASETS:
        graph = datasets.load(name, num_nodes=350, seed=0)
        queries = queries_for(graph, count=1, seed=13)
        shared = dict(k=3, zeta=0.5, r=12, l=12, evaluation_samples=400)
        mc_stats = compare_methods_single_st(
            graph, queries, METHODS,
            SingleStProtocol(
                estimator_factory=mc_estimator_factory(300), **shared
            ),
        )
        rss_stats = compare_methods_single_st(
            graph, queries, METHODS,
            SingleStProtocol(
                estimator_factory=default_estimator_factory(150), **shared
            ),
        )
        table.add_row(
            name, "MC", 300,
            mc_stats["hc"].mean_seconds,
            mc_stats["mrp"].mean_seconds,
            mc_stats["be"].mean_seconds,
        )
        table.add_row(
            name, "RSS", 150,
            rss_stats["hc"].mean_seconds,
            rss_stats["mrp"].mean_seconds,
            rss_stats["be"].mean_seconds,
        )
        rows[name] = (mc_stats, rss_stats)
    table.add_note(
        "paper: RSS at half the sample size cuts HC time ~45%, BE up to 40%"
    )
    table.add_note(
        "note: in this pure-Python build RSS's per-sample overhead "
        "(recursive stratification over dicts) partly offsets the "
        "halved sample count; the variance win (Table 6) is what the "
        "paper's C++ implementation converts into wall-clock savings"
    )
    save_table(table, "table07_sampler_selection")
    return rows


def test_table07(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, (mc_stats, rss_stats) in rows.items():
        # RSS at half the sample budget stays in the same cost regime
        # (the paper's C++ build turns this into an outright win; the
        # pure-Python stratification overhead caps ours at parity).
        assert rss_stats["hc"].mean_seconds < mc_stats["hc"].mean_seconds * 2
        # Quality stays comparable at half the samples — the claim that
        # matters for the pipeline's correctness.
        assert rss_stats["be"].mean_gain >= mc_stats["be"].mean_gain - 0.1
