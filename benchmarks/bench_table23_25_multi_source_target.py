"""Tables 23-25: multiple-source-target maximization (Min / Max / Avg).

BE against HC, Eigen-Optimization (EO), ESSSP and IMA on the twitter-like
dataset for each aggregate and growing set sizes.  Paper's shape: BE wins
the gain under every aggregate; EO (global, query-agnostic) trails badly
on Min/Max; IMA is closest to BE under Avg (its objective is a variant of
average reliability); HC is the slowest by far.
"""


from repro.experiments import (
    ResultTable,
    compare_methods_multi,
    default_estimator_factory,
)
from repro.queries import sample_multi_sets

from _common import method_label, save_table
from repro import datasets

METHODS = ["hc", "eo", "esssp", "ima", "be"]
AGGREGATES = ["minimum", "maximum", "average"]
SET_SIZES = [2, 3]
TABLE_IDS = {"minimum": "23", "maximum": "24", "average": "25"}


def run():
    graph = datasets.load("twitter", num_nodes=400, seed=0)
    results = {}
    for aggregate in AGGREGATES:
        table = ResultTable(
            f"Table {TABLE_IDS[aggregate]}: multi-source-target "
            f"({aggregate}), twitter-like, k=4, k1/k=25%",
            ["#Src:#Tgt",
             *[f"{method_label(m)} gain" for m in METHODS],
             *[f"{method_label(m)} time (s)" for m in METHODS]],
        )
        per_size = {}
        for size in SET_SIZES:
            sources, targets = sample_multi_sets(graph, size, seed=67 + size)
            stats = compare_methods_multi(
                graph, sources, targets, METHODS, aggregate,
                k=4, zeta=0.5, r=12, l=10, k1_fraction=0.25,
                estimator_factory=default_estimator_factory(100),
                evaluation_samples=400,
            )
            table.add_row(
                f"{size}:{size}",
                *[stats[m].mean_gain for m in METHODS],
                *[stats[m].mean_seconds for m in METHODS],
            )
            per_size[size] = stats
        table.add_note(
            "paper (k=100, up to 500:500): BE wins gain everywhere; "
            "EO weakest on Min/Max; IMA ~BE on Avg; HC slowest"
        )
        save_table(
            table, f"table{TABLE_IDS[aggregate]}_multi_{aggregate}"
        )
        results[aggregate] = per_size
    return results


def test_tables23_25(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for aggregate, per_size in results.items():
        for size, stats in per_size.items():
            # BE beats the query-agnostic EO baseline (paper's headline).
            assert stats["be"].mean_gain >= stats["eo"].mean_gain - 0.05
            # BE never loses badly to any competitor.
            best_other = max(
                stats[m].mean_gain for m in METHODS if m != "be"
            )
            assert stats["be"].mean_gain >= best_other - 0.15
