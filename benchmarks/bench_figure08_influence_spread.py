"""Figure 8: targeted influence maximization in the DBLP-like network.

Seniors (high-degree authors) campaign to juniors (low-degree authors);
k new collaboration edges are recommended.  Paper's result: the paper's
method lifts the expected influence spread far more than Eigen-
Optimization (EO) at every budget (+326 influenced juniors at k=100).
"""


from repro.baselines import eigenvalue_selection
from repro.graph import fixed_new_edge_probability
from repro.influence import influence_spread, maximize_targeted_influence
from repro.experiments import ResultTable

from _common import save_table
from repro import datasets

K_VALUES = [5, 10]
ZETA = 0.5


def pick_groups(graph, num_seniors=5, num_juniors=60):
    """High-degree nodes = seniors; low-degree nodes = juniors."""
    ranked = sorted(graph.nodes(), key=lambda u: -graph.degree(u))
    seniors = ranked[:num_seniors]
    juniors = [u for u in reversed(ranked) if u not in seniors][:num_juniors]
    return seniors, juniors


def run():
    graph = datasets.load("dblp", num_nodes=500, seed=0)
    seniors, juniors = pick_groups(graph)
    base = influence_spread(graph, seniors, juniors, num_samples=800, seed=9)

    table = ResultTable(
        "Figure 8: influence spread senior -> junior "
        f"(dblp-like, |S|={len(seniors)}, |T|={len(juniors)}, zeta={ZETA})",
        ["k", "Original spread", "EO spread", "BE spread"],
    )
    rows = {}
    for k in K_VALUES:
        eo_edges = eigenvalue_selection(
            graph, k, fixed_new_edge_probability(ZETA), seed=1
        )
        eo_spread = influence_spread(
            graph, seniors, juniors, num_samples=800, seed=9,
            extra_edges=eo_edges,
        )
        be = maximize_targeted_influence(
            graph, seniors, juniors, k, zeta=ZETA, r=12, l=10,
            spread_samples=800, seed=2,
        )
        table.add_row(k, base, eo_spread, be.new_spread)
        rows[k] = (base, eo_spread, be.new_spread)
    table.add_note(
        "paper (k=100): original ~462, EO adds little, paper's method "
        "reaches ~788 (+326 juniors)"
    )
    save_table(table, "figure08_influence_spread")
    return rows


def test_figure08(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for k, (base, eo_spread, be_spread) in rows.items():
        # The targeted method beats both no-action and the global
        # eigenvalue heuristic.
        assert be_spread > base
        assert be_spread >= eo_spread - 0.25
    # Larger budgets help.
    assert rows[K_VALUES[-1]][2] >= rows[K_VALUES[0]][2] - 0.25
