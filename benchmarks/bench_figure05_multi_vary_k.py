"""Figure 5: multi-source-target gain and time as the budget k grows.

BE under all three aggregates for increasing k.  Paper's shape: gains
grow with k under every aggregate; the Avg curve's time is ~linear in k
while Min/Max (k1-installment loops) are less k-sensitive.
"""

import time


from repro.core import MultiSourceTargetMaximizer
from repro.reliability import RecursiveStratifiedSampler
from repro.queries import sample_multi_sets
from repro.experiments import ResultTable

from _common import save_table
from repro import datasets

K_VALUES = [2, 4, 8]
AGGREGATES = ["minimum", "maximum", "average"]


def run():
    graph = datasets.load("twitter", num_nodes=400, seed=0)
    sources, targets = sample_multi_sets(graph, 3, seed=71)
    table = ResultTable(
        "Figure 5: multi-source-target BE, varying k "
        "(twitter-like, |S|=|T|=3)",
        ["k", "Min gain", "Max gain", "Avg gain",
         "Min time (s)", "Max time (s)", "Avg time (s)"],
    )
    curves = {agg: [] for agg in AGGREGATES}
    times = {agg: [] for agg in AGGREGATES}
    for k in K_VALUES:
        for aggregate in AGGREGATES:
            solver = MultiSourceTargetMaximizer(
                estimator=RecursiveStratifiedSampler(100, seed=3),
                r=12, l=10, k1_fraction=0.25,
                evaluation_samples=400,
            )
            start = time.perf_counter()
            solution = solver.maximize(
                graph, sources, targets, k, zeta=0.5, aggregate=aggregate
            )
            elapsed = time.perf_counter() - start
            curves[aggregate].append(solution.gain)
            times[aggregate].append(elapsed)
        table.add_row(
            k,
            *[curves[a][-1] for a in AGGREGATES],
            *[times[a][-1] for a in AGGREGATES],
        )
    table.add_note(
        "paper (k=10..500): all three gain curves rise with k; Avg time "
        "~linear in k, Min/Max less sensitive"
    )
    save_table(table, "figure05_multi_vary_k")
    return curves, times


def test_figure05(benchmark):
    curves, _ = benchmark.pedantic(run, rounds=1, iterations=1)
    for aggregate, gains in curves.items():
        # Bigger budget cannot materially hurt the aggregate objective.
        assert gains[-1] >= gains[0] - 0.07, aggregate
        assert all(g >= -0.05 for g in gains), aggregate
