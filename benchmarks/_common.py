"""Shared configuration and helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper at laptop
scale: same protocol, same parameter sweeps, scaled-down graphs and
query counts (see DESIGN.md §4).  Rendered tables are printed and also
written to ``benchmarks/results/<name>.txt`` so a full
``pytest benchmarks/ --benchmark-only`` run leaves an inspectable record.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

from repro import datasets
from repro.experiments import ResultTable
from repro.graph import UncertainGraph
from repro.queries import sample_st_pairs

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Bench-scale node counts per dataset (paper scale in DESIGN.md §4).
BENCH_NODES = {
    "intel-lab": None,     # fixed 54 sensors
    "lastfm": 700,
    "as-topology": 800,
    "dblp": 900,
    "twitter": 900,
    "random-1": 700,
    "random-2": 700,
    "regular-1": 700,
    "regular-2": 700,
    "smallworld-1": 700,
    "smallworld-2": 700,
    "scalefree-1": 700,
    "scalefree-2": 700,
}

#: Default experiment scale (the paper averages 100 queries; we use few).
NUM_QUERIES = 2
BENCH_K = 5
BENCH_R = 20
BENCH_L = 20
BENCH_ZETA = 0.5
SELECTION_SAMPLES = 150
EVALUATION_SAMPLES = 600


def load(name: str, num_nodes: Optional[int] = -1, seed: int = 0) -> UncertainGraph:
    """Bench-scale dataset (``num_nodes=-1`` uses BENCH_NODES)."""
    if num_nodes == -1:
        num_nodes = BENCH_NODES.get(name)
    return datasets.load(name, num_nodes=num_nodes, seed=seed)


def queries_for(
    graph: UncertainGraph,
    count: int = NUM_QUERIES,
    seed: int = 11,
    min_hops: int = 3,
    max_hops: int = 5,
) -> List[Tuple[int, int]]:
    return sample_st_pairs(
        graph, count, seed=seed, min_hops=min_hops, max_hops=max_hops
    )


def save_table(table: ResultTable, name: str) -> None:
    """Print the table and persist it under benchmarks/results/."""
    table.show()
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(table.render() + "\n")


def method_label(method: str) -> str:
    return {
        "hc": "Hill Climbing",
        "mrp": "Most Reliable Path",
        "ip": "Individual Path (IP)",
        "be": "Batch Edge (BE)",
        "topk": "Individual Top-k",
        "degree": "Centrality (degree)",
        "betweenness": "Centrality (betweenness)",
        "eigen": "Eigenvalue-based",
        "random": "Random",
        "exact": "Exact Solution (ES)",
        "eo": "Eigen Optimization (EO)",
        "esssp": "ESSSP",
        "ima": "IMA",
    }.get(method, method)
