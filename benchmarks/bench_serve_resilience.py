"""Benchmark: serving resilience under overload — shed fast, serve steady.

The resilience layer's claim (:mod:`repro.serve`): bounded admission
(``max_pending``) keeps an overloaded server *predictable* — excess
requests are rejected in microseconds with a typed
:class:`~repro.serve.OverloadedError` (HTTP 503 + Retry-After) instead
of queueing without bound, and the requests that *are* admitted see
latencies close to an unloaded server.  This benchmark fires a burst of
``4 x max_pending`` concurrent clients at one coalescing
:class:`~repro.serve.AsyncSession` and measures both populations,
plus the per-call cost of a disarmed fault seam (the "zero overhead
when disarmed" contract every hot path relies on).

Gates (the PR gate, enforced in nightly CI):

* exactly ``max_pending`` requests admitted, the rest shed;
* shed requests rejected fast: p99 rejection latency <= 50 ms and
  under half the accepted p99;
* accepted p99 latency <= 2x the unloaded baseline p99;
* every accepted response **bit-for-bit equal** to a one-off
  ``Session.run`` of the same query;
* a disarmed ``fault_point`` costs < 2 us per call.

Usage::

    python benchmarks/bench_serve_resilience.py             # full gate
    python benchmarks/bench_serve_resilience.py --smoke     # quick CI check
    python benchmarks/bench_serve_resilience.py --json out.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import faults  # noqa: E402
from repro.api import ReliabilityQuery, Session, Workload  # noqa: E402
from repro.graph import assign_uniform, erdos_renyi  # noqa: E402
from repro.serve import AsyncSession, OverloadedError  # noqa: E402


def build_graph(num_nodes: int, num_edges: int, seed: int = 0):
    graph = erdos_renyi(num_nodes, num_edges=num_edges, seed=seed)
    return assign_uniform(graph, 0.05, 0.5, seed=seed + 1)


def client_queries(graph, num_clients: int, samples: int):
    n = graph.num_nodes
    return [
        ReliabilityQuery(
            (i * 7) % (n // 2), target=n - 1 - (i * 5) % (n // 2),
            samples=samples,
        )
        for i in range(num_clients)
    ]


def percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


async def timed_submit(serving, query):
    """Submit one query; classify and time the outcome."""
    start = time.perf_counter()
    try:
        result = await serving.submit(query)
        return "accepted", time.perf_counter() - start, result
    except OverloadedError:
        return "shed", time.perf_counter() - start, None


def run_burst(graph, queries, seed: int, max_pending: int | None,
              wait_ms: float):
    """Fire every query concurrently; return per-outcome latencies."""

    async def _run():
        async with AsyncSession(
            graph, seed=seed, max_wait_ms=wait_ms, max_pending=max_pending
        ) as serving:
            outcomes = await asyncio.gather(
                *(timed_submit(serving, q) for q in queries)
            )
            return outcomes, serving.stats.as_dict()

    return asyncio.run(_run())


def disarmed_seam_overhead(calls: int = 200_000) -> float:
    """Per-call seconds for a fault_point with the registry disarmed."""
    assert not faults.armed()
    fault_point = faults.fault_point
    start = time.perf_counter()
    for _ in range(calls):
        fault_point("bench.overhead")
    return (time.perf_counter() - start) / calls


def run(smoke: bool, json_path: str | None) -> int:
    if smoke:
        num_nodes, num_edges, z = 200, 600, 256
        max_pending = 4
    else:
        num_nodes, num_edges, z = 1000, 3000, 1000
        max_pending = 16
    burst = 4 * max_pending

    graph = build_graph(num_nodes, num_edges)
    queries = client_queries(graph, burst, z)
    print(f"graph: n={graph.num_nodes} m={graph.num_edges} Z={z} "
          f"burst={burst} max_pending={max_pending}")

    # Unloaded baseline: max_pending concurrent clients, no shedding.
    baseline_outcomes, _ = run_burst(
        graph, queries[:max_pending], seed=17, max_pending=None, wait_ms=10.0
    )
    baseline_latencies = [t for kind, t, _ in baseline_outcomes]
    baseline_p99 = percentile(baseline_latencies, 0.99)

    # Overload burst: 4x max_pending clients in one tick.
    outcomes, stats = run_burst(
        graph, queries, seed=17, max_pending=max_pending, wait_ms=10.0
    )
    accepted = [(t, r) for kind, t, r in outcomes if kind == "accepted"]
    shed = [t for kind, t, _ in outcomes if kind == "shed"]
    accepted_p99 = percentile([t for t, _ in accepted], 0.99)
    shed_p99 = percentile(shed, 0.99) if shed else 0.0

    print(f"  unloaded p99:          {baseline_p99 * 1000:9.1f} ms "
          f"({max_pending} clients)")
    print(f"  accepted under burst:  {accepted_p99 * 1000:9.1f} ms p99 "
          f"({len(accepted)} requests)")
    print(f"  shed under burst:      {shed_p99 * 1000:9.3f} ms p99 "
          f"({len(shed)} requests)")

    # Accepted answers must still be bit-for-bit one-off results.
    accepted_queries = [
        q for (kind, _, _), q in zip(outcomes, queries, strict=True)
        if kind == "accepted"
    ]
    mismatches = 0
    for (_, result), query in zip(accepted, accepted_queries, strict=True):
        session = Session(graph, seed=17)
        [expected] = session.run(Workload([query]))
        if result.values != expected.values:
            mismatches += 1

    overhead_s = disarmed_seam_overhead()
    print(f"  disarmed fault_point:  {overhead_s * 1e9:9.1f} ns/call")

    report = {
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "num_samples": z,
        "max_pending": max_pending,
        "burst_clients": burst,
        "baseline_p99_seconds": baseline_p99,
        "accepted_p99_seconds": accepted_p99,
        "shed_p99_seconds": shed_p99,
        "accepted_requests": len(accepted),
        "shed_requests": len(shed),
        "value_mismatches": mismatches,
        "disarmed_seam_ns_per_call": overhead_s * 1e9,
        "coalescer": stats,
    }
    if json_path:
        Path(json_path).write_text(json.dumps(report, indent=2))
        print(f"wrote {json_path}")

    failures = []
    if len(accepted) != max_pending or len(shed) != burst - max_pending:
        failures.append(
            f"admission drifted: {len(accepted)} accepted / "
            f"{len(shed)} shed (expected {max_pending} / "
            f"{burst - max_pending})"
        )
    if mismatches:
        failures.append(
            f"{mismatches} accepted responses differ from one-off "
            f"Session.run results"
        )
    if shed and shed_p99 > min(0.050, accepted_p99 / 2):
        failures.append(
            f"shed rejection too slow: p99 {shed_p99 * 1000:.1f} ms "
            f"(cap: min(50 ms, accepted_p99/2))"
        )
    if accepted_p99 > 2.0 * baseline_p99:
        failures.append(
            f"accepted p99 {accepted_p99 * 1000:.1f} ms exceeds 2x "
            f"unloaded baseline {baseline_p99 * 1000:.1f} ms"
        )
    if overhead_s > 2e-6:
        failures.append(
            f"disarmed fault_point costs {overhead_s * 1e9:.0f} ns/call "
            f"(cap 2000 ns)"
        )

    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print("OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small graph / small burst quick check for CI",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the timing report as JSON",
    )
    args = parser.parse_args()
    return run(smoke=args.smoke, json_path=args.json)


if __name__ == "__main__":
    raise SystemExit(main())
