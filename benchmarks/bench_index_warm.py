"""Benchmark: warm store-backed restarts vs cold per-process sessions.

The persistent index's claim (:mod:`repro.index`): a repeat-heavy
workload answered by a fresh process should not re-flip coins or
re-sweep worlds it has already paid for.  This benchmark simulates R
process restarts, each running the same reliability workload.  The
cold baseline gets a fresh :class:`~repro.api.Session` per restart
with no store — every restart pays compile + sampling + sweeps.  The
warm run primes an :class:`~repro.index.IndexStore` once, then gives
every "restarted" session a freshly opened store over the same
directory — restarts answer from the exact-match result cache and
never materialize worlds.

Gates (the PR gate, enforced in nightly CI):

* warm store-backed restarts >= 5x faster than cold restarts on the
  repeat-heavy workload;
* every warm value **bit-for-bit equal** to the cold run's (the store
  is a cache, never an approximation).

Usage::

    python benchmarks/bench_index_warm.py                 # full gate (>= 5x)
    python benchmarks/bench_index_warm.py --smoke         # quick CI check
    python benchmarks/bench_index_warm.py --json out.json # also dump timings
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.api import ReliabilityQuery, Session, Workload  # noqa: E402
from repro.graph import assign_uniform, erdos_renyi  # noqa: E402
from repro.index import IndexStore  # noqa: E402

CSR_CACHE_ATTR = "_engine_csr_cache"


def build_graph(num_nodes: int, num_edges: int, seed: int = 0):
    graph = erdos_renyi(num_nodes, num_edges=num_edges, seed=seed)
    return assign_uniform(graph, 0.05, 0.5, seed=seed + 1)


def drop_csr_cache(graph) -> None:
    """Make the next compile cold, as a fresh process would be."""
    if hasattr(graph, CSR_CACHE_ATTR):
        delattr(graph, CSR_CACHE_ATTR)


def build_workload(graph, num_queries: int, samples: int) -> Workload:
    """A fan-out reliability workload over spread s-t pairs."""
    n = graph.num_nodes
    queries = []
    for i in range(num_queries):
        s = (i * n) // (num_queries + 1)
        t = n - 1 - ((i * n) // (num_queries + 2))
        if s == t:
            t = (t + 1) % n
        queries.append(ReliabilityQuery(s, target=t, samples=samples))
    return Workload(queries)


def restart_values(graph, workload, seed: int, store_root=None):
    """Run the workload as one fresh 'process' (cold compile)."""
    drop_csr_cache(graph)
    store = IndexStore(store_root) if store_root is not None else None
    try:
        session = Session(graph, seed=seed, store=store)
        results = session.run(workload)
    finally:
        if store is not None:
            store.close()
    return [value for result in results for value in result.values]


def time_restarts(graph, workload, seed: int, rounds: int, store_root=None):
    """Total wall clock of `rounds` restarts; values from the last one."""
    values = []
    start = time.perf_counter()
    for _ in range(rounds):
        values = restart_values(graph, workload, seed, store_root=store_root)
    return time.perf_counter() - start, values


def run(smoke: bool, json_path: str | None) -> int:
    if smoke:
        num_nodes, num_edges, z = 200, 600, 2048
        num_queries, rounds = 8, 2
        required_speedup = 1.0  # smoke only gates "runs and agrees"
    else:
        num_nodes, num_edges, z = 1000, 3000, 16384
        num_queries, rounds = 24, 5
        required_speedup = 5.0

    graph = build_graph(num_nodes, num_edges)
    workload = build_workload(graph, num_queries, z)
    print(f"graph: n={graph.num_nodes} m={graph.num_edges} Z={z} "
          f"queries={num_queries} restarts={rounds}")

    cold_s, cold_values = time_restarts(graph, workload, seed=17,
                                        rounds=rounds)

    with tempfile.TemporaryDirectory(prefix="bench-index-") as root:
        prime_start = time.perf_counter()
        restart_values(graph, workload, seed=17, store_root=root)
        prime_s = time.perf_counter() - prime_start
        warm_s, warm_values = time_restarts(graph, workload, seed=17,
                                            rounds=rounds, store_root=root)
        with IndexStore(root) as store:
            stats = store.stats().as_dict()

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    print(f"  cold restarts (no store):   {cold_s * 1000:9.1f} ms "
          f"({cold_s * 1000 / rounds:.2f} ms/restart)")
    print(f"  store prime (first run):    {prime_s * 1000:9.1f} ms")
    print(f"  warm restarts (store):      {warm_s * 1000:9.1f} ms "
          f"({warm_s * 1000 / rounds:.2f} ms/restart)")
    print(f"  speedup:                    {speedup:9.1f}x")
    print(f"  store: {stats['num_batches']} batch(es), "
          f"{stats['num_results']} cached results, "
          f"{stats['batch_bytes'] / 1e6:.1f} MB")

    # The store is a cache of deterministic computations: a warm restart
    # must return exactly what the cold computation produced.
    mismatches = sum(1 for a, b in zip(cold_values, warm_values, strict=True) if a != b)

    report = {
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "num_samples": z,
        "num_queries": num_queries,
        "rounds": rounds,
        "required_speedup": required_speedup,
        "cold_seconds": cold_s,
        "prime_seconds": prime_s,
        "warm_seconds": warm_s,
        "speedup": speedup,
        "value_mismatches": mismatches,
        "store": stats,
    }
    if json_path:
        Path(json_path).write_text(json.dumps(report, indent=2))
        print(f"wrote {json_path}")

    if mismatches:
        print(f"FAIL: {mismatches} warm values differ from cold values")
        return 1
    if speedup < required_speedup:
        print(f"FAIL: speedup {speedup:.1f}x below {required_speedup}x")
        return 1
    print("OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small graph / few restarts quick check for CI",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the timing report as JSON",
    )
    args = parser.parse_args()
    return run(smoke=args.smoke, json_path=args.json)


if __name__ == "__main__":
    raise SystemExit(main())
