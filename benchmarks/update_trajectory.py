"""Consolidate benchmark timing JSON into BENCH_* trajectory files.

Each full benchmark run writes a one-off timing JSON (``--json``); this
script folds those into the per-benchmark **perf-trajectory** files at
the repo root — ``BENCH_engine.json``, ``BENCH_session.json``,
``BENCH_selection.json``, ``BENCH_sweep.json``, ``BENCH_serve.json``,
``BENCH_index.json`` — so speedups are
trackable across PRs.  Every entry records the UTC date, the commit (if
resolvable), a label, and the benchmark's headline metrics; the full
per-run report stays an artifact, the trajectory keeps only what a
regression plot needs.

Nightly CI runs the full gates, appends a ``nightly`` entry per
benchmark, and commits the updated trajectory files back to the repo.

Usage::

    python benchmarks/update_trajectory.py --label nightly \
        engine=bench-engine.json session=bench-api-session.json \
        selection=bench-selection.json sweep=bench-sweep.json
"""

from __future__ import annotations

import argparse
import datetime
import json
import subprocess
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Benchmarks the trajectory tracks -> headline-metric extractor.
EXTRACTORS = {}

#: Reports that fold into another benchmark's trajectory file.  The
#: resilience and shard-pool runs are facets of the serving story, so
#: their entries land in BENCH_serve.json next to the coalescing
#: speedups.
TRAJECTORY_FILES = {"serve_resilience": "serve", "serve_shards": "serve"}


def extractor(name):
    def register(fn):
        EXTRACTORS[name] = fn
        return fn
    return register


@extractor("engine")
def _engine(report: dict) -> dict:
    return {
        "speedup": report["speedup"],
        "vectorized_seconds": report["vectorized_seconds"],
        "scalar_seconds": report["scalar_seconds"],
    }


@extractor("session")
def _session(report: dict) -> dict:
    return {
        workload["workload"]: {
            "speedup": workload["speedup"],
            "session_seconds": workload["session_seconds"],
        }
        for workload in report["workloads"]
    }


@extractor("selection")
def _selection(report: dict) -> dict:
    return {
        method["method"]: {
            "speedup": method["speedup"],
            "kernel_seconds": method["kernel_seconds"],
        }
        for method in report["methods"]
    }


@extractor("serve")
def _serve(report: dict) -> dict:
    return {
        "speedup": report["speedup"],
        "coalesced_seconds": report["coalesced_seconds"],
        "num_clients": report["num_clients"],
        "mean_batch_size": report["coalescer"]["mean_batch_size"],
    }


@extractor("serve_resilience")
def _serve_resilience(report: dict) -> dict:
    return {
        "benchmark": "serve_resilience",
        "max_pending": report["max_pending"],
        "burst_clients": report["burst_clients"],
        "accepted_p99_seconds": report["accepted_p99_seconds"],
        "shed_p99_seconds": report["shed_p99_seconds"],
        "disarmed_seam_ns_per_call": report["disarmed_seam_ns_per_call"],
    }


@extractor("serve_shards")
def _serve_shards(report: dict) -> dict:
    return {
        "benchmark": "serve_shards",
        "num_shards": report["num_shards"],
        "num_clients": report["num_clients"],
        "speedup": report["speedup"],
        "sharded_seconds": report["sharded_seconds"],
        "one_shard_seconds": report["one_shard_seconds"],
        "non_200": report["non_200"],
        "replays": report["sharded_supervisor"]["replays"],
    }


@extractor("delta")
def _delta(report: dict) -> dict:
    return {
        "speedup": report["speedup"],
        "repair_seconds": report["repair_seconds"],
        "evict_seconds": report["evict_seconds"],
        "rounds": report["rounds"],
        "num_edits": report["num_edits"],
    }


@extractor("index")
def _index(report: dict) -> dict:
    return {
        "speedup": report["speedup"],
        "cold_seconds": report["cold_seconds"],
        "warm_seconds": report["warm_seconds"],
        "prime_seconds": report["prime_seconds"],
        "rounds": report["rounds"],
    }


@extractor("sweep")
def _sweep(report: dict) -> dict:
    def widest(cases):
        case = max(cases, key=lambda c: c["num_samples"])
        return {
            "num_samples": case["num_samples"],
            "gated_speedup": case["gated_speedup"],
            "gated_seconds": case["gated_seconds"],
        }

    selection = report["selection"]
    return {
        "ring": widest(report["sweep"]["ring"]),
        "er": widest(report["sweep"]["er"]),
        "incremental_per_round_speedup": selection["per_round_speedup"],
        "incremental_seconds": selection["incremental_seconds"],
    }


def current_commit() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=10,
        )
    except OSError:  # pragma: no cover - git absent
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def append_entry(name: str, report_path: Path, label: str) -> Path:
    report = json.loads(report_path.read_text())
    trajectory_path = (
        REPO_ROOT / f"BENCH_{TRAJECTORY_FILES.get(name, name)}.json"
    )
    if trajectory_path.exists():
        trajectory = json.loads(trajectory_path.read_text())
    else:
        trajectory = []
    trajectory.append({
        "date": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%d"),
        "commit": current_commit(),
        "label": label,
        "metrics": EXTRACTORS[name](report),
    })
    trajectory_path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return trajectory_path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "reports", nargs="+", metavar="NAME=PATH",
        help=f"benchmark reports to fold in; names: {sorted(EXTRACTORS)}",
    )
    parser.add_argument(
        "--label", default="local",
        help="entry label (e.g. nightly, local, pr-gate)",
    )
    args = parser.parse_args()
    for spec in args.reports:
        name, _, path = spec.partition("=")
        if name not in EXTRACTORS or not path:
            raise SystemExit(
                f"bad report spec {spec!r}; expected NAME=PATH with NAME "
                f"in {sorted(EXTRACTORS)}"
            )
        written = append_entry(name, Path(path), args.label)
        print(f"appended {name} entry -> {written.relative_to(REPO_ROOT)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
