"""Benchmark: supervised shard pool vs one shard under keep-alive HTTP load.

The shard pool's claim (:mod:`repro.serve.shard`): routing requests by
their coalescing key over N worker *processes* multiplies serving
throughput — each shard pays one compile + one coin-flip pass per
window on its own core — while crash replay keeps every answer
bit-for-bit equal to a one-off ``Session.run``.  This benchmark drives
128 keep-alive HTTP clients (stdlib ``http.client``, one connection
each) at a :class:`~repro.serve.ReliabilityServer` fronting a
:class:`~repro.serve.ShardSupervisor`, and compares 4 shards against 1.

Gates (the PR gate, enforced in nightly CI on multi-core runners):

* 4 shards >= 2x the throughput of one shard at 128 keep-alive clients;
* zero non-200 responses in either run;
* every response **bit-for-bit equal** to a one-off ``Session.run`` of
  the same query.

``--smoke`` only gates "runs, answers everything, agrees bit-for-bit"
(no speedup assertion: CI smoke boxes — and this container — may have
a single core, where extra processes cannot pay for their IPC).

Usage::

    python benchmarks/bench_serve_shards.py                 # full gate (>= 2x)
    python benchmarks/bench_serve_shards.py --smoke         # quick CI check
    python benchmarks/bench_serve_shards.py --json out.json # also dump timings
"""

from __future__ import annotations

import argparse
import asyncio
import http.client
import json
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.api import ReliabilityQuery, Session, Workload  # noqa: E402
from repro.graph import assign_uniform, erdos_renyi  # noqa: E402
from repro.serve import ReliabilityServer, ShardSupervisor  # noqa: E402


def build_graph(num_nodes: int, num_edges: int, seed: int = 0):
    graph = erdos_renyi(num_nodes, num_edges=num_edges, seed=seed)
    return assign_uniform(graph, 0.05, 0.5, seed=seed + 1)


def client_plans(graph, num_clients: int, per_client: int, samples: int,
                 seed_groups: int):
    """One request list per client, seeds spread over ``seed_groups`` keys.

    Distinct seeds are distinct coalescing keys, so the router spreads
    them across shards; requests sharing a seed still coalesce within
    their home shard.
    """
    n = graph.num_nodes
    plans = []
    for c in range(num_clients):
        queries = []
        for r in range(per_client):
            k = (c * per_client + r) % seed_groups
            queries.append(ReliabilityQuery(
                source=(c * 7 + r) % (n // 2),
                target=n - 1 - ((c + r * 3) % (n // 2)),
                samples=samples,
                seed=1000 + k,
            ))
        plans.append(queries)
    return plans


def one_off_values(graph, plans, seed: int):
    """Ground truth: every distinct query answered by its own workload."""
    session = Session(graph, seed=seed)
    values = {}
    for queries in plans:
        for q in queries:
            if q not in values:
                values[q] = session.run(Workload([q]))[0].values[0]
    return values


def drive_clients(host, port, plans, loop):
    """One keep-alive connection per client; returns (statuses, answers)."""

    def client(queries):
        conn = http.client.HTTPConnection(host, port, timeout=300)
        outcomes = []
        try:
            for q in queries:
                body = json.dumps({
                    "source": q.source, "target": q.target,
                    "samples": q.samples, "seed": q.seed,
                }).encode()
                conn.request("POST", "/reliability", body,
                             {"Content-Type": "application/json"})
                response = conn.getresponse()
                payload = json.loads(response.read())
                value = (payload["results"][0]["value"]
                         if response.status == 200 else None)
                outcomes.append((response.status, value))
        finally:
            conn.close()
        return outcomes

    pool = ThreadPoolExecutor(max_workers=len(plans))
    try:
        futures = [loop.run_in_executor(pool, client, queries)
                   for queries in plans]
        return asyncio.gather(*futures)
    finally:
        pool.shutdown(wait=False)


def time_pool(graph, plans, num_shards: int, seed: int, wait_ms: float):
    """Serve every client plan through an N-shard pool; time the burst."""

    async def _run():
        supervisor = ShardSupervisor(
            graph, num_shards=num_shards, max_batch=128,
            max_wait_ms=wait_ms, seed=seed,
        )
        server = ReliabilityServer(supervisor)
        host, port = await server.start()
        loop = asyncio.get_running_loop()
        try:
            start = time.perf_counter()
            outcomes = await drive_clients(host, port, plans, loop)
            elapsed = time.perf_counter() - start
            stats = supervisor.stats.as_dict()
        finally:
            await server.stop()
            await supervisor.close()
        return elapsed, outcomes, stats

    return asyncio.run(_run())


def check_outcomes(plans, outcomes, expected):
    """Returns (non_200, mismatches) across every client's answers."""
    non_200 = mismatches = 0
    for queries, answers in zip(plans, outcomes):
        for q, (status, value) in zip(queries, answers):
            if status != 200:
                non_200 += 1
            elif value != expected[q]:
                mismatches += 1
    return non_200, mismatches


def run(smoke: bool, json_path: str | None) -> int:
    if smoke:
        num_nodes, num_edges, z = 150, 400, 300
        num_clients, per_client, seed_groups = 16, 2, 8
        shards = 2
        required_speedup = 0.0  # smoke gates "answers and agrees" only
    else:
        num_nodes, num_edges, z = 600, 1800, 2000
        num_clients, per_client, seed_groups = 128, 4, 16
        shards = 4
        required_speedup = 2.0

    graph = build_graph(num_nodes, num_edges)
    plans = client_plans(graph, num_clients, per_client, z, seed_groups)
    total = sum(len(p) for p in plans)
    print(f"graph: n={graph.num_nodes} m={graph.num_edges} Z={z} "
          f"clients={num_clients} requests={total} "
          f"seed_groups={seed_groups}")

    expected = one_off_values(graph, plans, seed=17)

    one_s, one_outcomes, one_stats = time_pool(
        graph, plans, num_shards=1, seed=17, wait_ms=10.0
    )
    sharded_s, sharded_outcomes, sharded_stats = time_pool(
        graph, plans, num_shards=shards, seed=17, wait_ms=10.0
    )
    speedup = one_s / sharded_s if sharded_s > 0 else float("inf")

    print(f"  1 shard:  {one_s * 1000:9.1f} ms "
          f"({total / one_s:7.1f} req/s)")
    print(f"  {shards} shards: {sharded_s * 1000:9.1f} ms "
          f"({total / sharded_s:7.1f} req/s)")
    print(f"  speedup:  {speedup:9.2f}x")

    one_bad, one_diff = check_outcomes(plans, one_outcomes, expected)
    sharded_bad, sharded_diff = check_outcomes(plans, sharded_outcomes, expected)
    non_200 = one_bad + sharded_bad
    mismatches = one_diff + sharded_diff

    report = {
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "num_samples": z,
        "num_clients": num_clients,
        "requests": total,
        "num_shards": shards,
        "required_speedup": required_speedup,
        "one_shard_seconds": one_s,
        "sharded_seconds": sharded_s,
        "speedup": speedup,
        "non_200": non_200,
        "value_mismatches": mismatches,
        "one_shard_supervisor": one_stats,
        "sharded_supervisor": sharded_stats,
    }
    if json_path:
        Path(json_path).write_text(json.dumps(report, indent=2))
        print(f"wrote {json_path}")

    if non_200:
        print(f"FAIL: {non_200} responses were not 200 OK")
        return 1
    if mismatches:
        print(f"FAIL: {mismatches} responses differ from one-off "
              f"Session.run results")
        return 1
    if speedup < required_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below {required_speedup}x")
        return 1
    print("OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small graph / few clients / no speedup gate for CI",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the timing report as JSON",
    )
    args = parser.parse_args()
    return run(smoke=args.smoke, json_path=args.json)


if __name__ == "__main__":
    raise SystemExit(main())
