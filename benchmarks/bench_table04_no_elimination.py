"""Table 4: all methods WITHOUT search-space elimination.

Paper protocol (lastFM, k=10, zeta=0.5): every missing edge is a
candidate; Individual Top-k and Hill Climbing take hours, the path-based
methods stay fast, and BE's quality is on par with HC.  Scaled here to a
small lastfm-like graph with an h-hop bound so the unrestricted baseline
finishes (the quadratic blow-up is the point the table makes — its
*shape* survives scaling).
"""


from repro.experiments import (
    ResultTable,
    SingleStProtocol,
    compare_methods_single_st,
    default_estimator_factory,
)

from _common import method_label, queries_for, save_table
from repro import datasets

METHODS = ["topk", "hc", "degree", "betweenness", "eigen", "mrp", "ip", "be"]


def run():
    graph = datasets.load("lastfm", num_nodes=300, seed=0)
    queries = queries_for(graph, count=1, seed=5)
    protocol = SingleStProtocol(
        k=3,
        zeta=0.5,
        r=16,
        l=15,
        h=3,                       # bounds the O(n^2) candidate universe
        eliminate=False,
        evaluation_samples=600,
        estimator_factory=default_estimator_factory(100),
    )
    stats = compare_methods_single_st(graph, queries, METHODS, protocol)
    table = ResultTable(
        "Table 4: reliability gain and running time WITHOUT search-space "
        "elimination (lastfm-like, k=3, zeta=0.5)",
        ["Method", "Reliability Gain", "Running Time (sec)"],
    )
    for method in METHODS:
        table.add_row(
            method_label(method),
            stats[method].mean_gain,
            stats[method].mean_seconds,
        )
    table.add_note(
        "paper (lastFM, k=10): gains topk=0.27 hc=0.32 degree=0.03 "
        "betw=0.11 eigen=0.09 mrp=0.26 ip=0.29 be=0.31; hc ~10^4x slower"
    )
    save_table(table, "table04_no_elimination")
    return stats


def test_table04(benchmark):
    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    # Qualitative shape of Table 4:
    # 1. BE at least matches IP and MRP in quality.
    assert stats["be"].mean_gain >= stats["ip"].mean_gain - 0.05
    assert stats["be"].mean_gain >= stats["mrp"].mean_gain - 0.05
    # 2. Path-based methods beat the query-agnostic baselines.
    for weak in ("degree", "eigen"):
        assert stats["be"].mean_gain > stats[weak].mean_gain
    # 3. Enumerative baselines are the slow ones.
    assert stats["hc"].mean_seconds > 5 * stats["be"].mean_seconds
    assert stats["topk"].mean_seconds > stats["be"].mean_seconds
