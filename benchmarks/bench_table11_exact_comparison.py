"""Table 11: IP and BE against the exhaustive Exact Solution (ES).

On the 54-sensor Intel-Lab stand-in, enumerate every k=3 subset of the
(eliminated) candidate set, following the paper's case-study setting:
new links only within 15 meters, zeta = average link probability = 0.33.
Paper's result: BE achieves ~94% of ES's gain (0.237 vs 0.252), returns
the identical edge set in 25/30 queries, and runs 3 orders of magnitude
faster.
"""

import time


from repro.datasets import intel_lab
from repro.graph import fixed_new_edge_probability
from repro.reliability import RecursiveStratifiedSampler
from repro.baselines import exact_solution
from repro.core import ReliabilityMaximizer
from repro.experiments import ResultTable

from _common import queries_for, save_table

K = 3
ZETA = 0.33


def run():
    graph = intel_lab.build()
    positions = intel_lab.sensor_positions()
    distance_ok = set(intel_lab.candidate_links(graph, positions))
    queries = queries_for(graph, count=2, seed=23, min_hops=3, max_hops=5)

    # r must span the lab (see Figures 6/7 bench): with a small r the
    # <=15 m filter leaves no candidate at all between C(s) and C(t).
    solver = ReliabilityMaximizer(
        estimator=RecursiveStratifiedSampler(120, seed=1),
        evaluation_samples=800,
        r=26,
        l=15,
    )
    prob_model = fixed_new_edge_probability(ZETA)

    table = ResultTable(
        "Table 11: comparison with the exact solution "
        "(intel-lab, k=3, zeta=0.33, <=15m links)",
        ["Method", "Reliability Gain", "Running Time (s)"],
    )
    sums = {"es": [0.0, 0.0], "ip": [0.0, 0.0], "be": [0.0, 0.0]}
    matches = 0
    for s, t in queries:
        space = solver.candidates(graph, s, t, prob_model)
        # Physical constraint: only <= 15 m candidate links.
        space.edges = [
            (u, v, p) for u, v, p in space.edges if (u, v) in distance_ok
        ]
        start = time.perf_counter()
        es_edges = exact_solution(
            graph, s, t, K, space.edge_pairs(), prob_model,
            RecursiveStratifiedSampler(120, seed=2),
        )
        es_time = time.perf_counter() - start
        es_gain = (
            solver.evaluate(graph, s, t, es_edges)
            - solver.evaluate(graph, s, t)
        )
        sums["es"][0] += es_gain
        sums["es"][1] += es_time
        for method in ("ip", "be"):
            solution = solver.maximize(
                graph, s, t, K, zeta=ZETA, method=method,
                candidate_space=space,
            )
            sums[method][0] += solution.gain
            sums[method][1] += solution.selection_seconds
            if method == "be":
                if {(u, v) for u, v, _ in solution.edges} == {
                    (u, v) for u, v, _ in es_edges
                }:
                    matches += 1
    n = len(queries)
    for method, label in (("es", "Exact Solution (ES)"),
                          ("ip", "Individual Path (IP)"),
                          ("be", "Batch Edge (BE)")):
        table.add_row(label, sums[method][0] / n, sums[method][1] / n)
    table.add_note(f"BE returned the exact edge set on {matches}/{n} queries")
    table.add_note("paper: ES 0.252 gain / 19189s; BE 0.237 / 12s (25/30 match)")
    save_table(table, "table11_exact_comparison")
    return sums, matches, n


def test_table11(benchmark):
    sums, matches, n = benchmark.pedantic(run, rounds=1, iterations=1)
    es_gain = sums["es"][0] / n
    be_gain = sums["be"][0] / n
    # ES is optimal (up to sampling noise): BE cannot materially beat it,
    # and must land close (paper: 94%).
    assert be_gain <= es_gain + 0.05
    assert be_gain >= es_gain - 0.15
    # BE's selection is far cheaper than exhaustive enumeration.
    assert sums["be"][1] < sums["es"][1]
