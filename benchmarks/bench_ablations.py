"""Ablations beyond the paper's tables (design choices from DESIGN.md).

* batch-gain normalization on/off — Example 3's divisor is what makes BE
  prefer cheap batches; without it BE degenerates toward IP's choices;
* elimination stages — stage 1 (reliability-based) and stage 2 (top-l
  path pruning) individually;
* random-selection floor — everything must beat random edges.
"""


from repro.core import (
    ReliabilityMaximizer,
    batch_selection,
    select_top_l_paths,
)
from repro.graph import fixed_new_edge_probability
from repro.reliability import RecursiveStratifiedSampler
from repro.experiments import ResultTable

from _common import queries_for, save_table
from repro import datasets


def run_normalization():
    graph = datasets.load("twitter", num_nodes=500, seed=0)
    queries = queries_for(graph, count=3, seed=73)
    solver = ReliabilityMaximizer(
        estimator=RecursiveStratifiedSampler(120, seed=1),
        evaluation_samples=600, r=15, l=15,
    )
    prob_model = fixed_new_edge_probability(0.5)
    table = ResultTable(
        "Ablation: batch-gain normalization (twitter-like, k=5)",
        ["Query", "BE gain (normalized)", "BE gain (raw)"],
    )
    diffs = []
    for s, t in queries:
        space = solver.candidates(graph, s, t, prob_model)
        path_set = select_top_l_paths(graph, s, t, 15, space.edges)
        norm_edges = batch_selection(
            graph, s, t, 5, path_set,
            RecursiveStratifiedSampler(120, seed=2), normalize=True,
        )
        raw_edges = batch_selection(
            graph, s, t, 5, path_set,
            RecursiveStratifiedSampler(120, seed=2), normalize=False,
        )
        g_norm = (
            solver.evaluate(graph, s, t, norm_edges)
            - solver.evaluate(graph, s, t)
        )
        g_raw = (
            solver.evaluate(graph, s, t, raw_edges)
            - solver.evaluate(graph, s, t)
        )
        table.add_row(f"{s}->{t}", g_norm, g_raw)
        diffs.append(g_norm - g_raw)
    table.add_note("normalization is Example 3's divisor: gain / #new edges")
    save_table(table, "ablation_batch_normalization")
    return diffs


def run_elimination_stages():
    graph = datasets.load("lastfm", num_nodes=400, seed=0)
    queries = queries_for(graph, count=2, seed=79)
    prob_model = fixed_new_edge_probability(0.5)
    table = ResultTable(
        "Ablation: elimination stages (lastfm-like, k=5, r=15, l=15)",
        ["Stage", "Mean candidates in", "Mean candidates out"],
    )
    stage1_in, stage1_out, stage2_out = [], [], []
    solver = ReliabilityMaximizer(
        estimator=RecursiveStratifiedSampler(120, seed=4), r=15, l=15,
    )
    for s, t in queries:
        total_missing = graph.num_nodes * (graph.num_nodes - 1) // 2
        space = solver.candidates(graph, s, t, prob_model)
        path_set = select_top_l_paths(graph, s, t, 15, space.edges)
        stage1_in.append(total_missing)
        stage1_out.append(len(space.edges))
        stage2_out.append(len(path_set.surviving_candidates))
    table.add_row(
        "1: reliability-based (Alg. 4)",
        sum(stage1_in) / len(stage1_in),
        sum(stage1_out) / len(stage1_out),
    )
    table.add_row(
        "2: top-l path pruning",
        sum(stage1_out) / len(stage1_out),
        sum(stage2_out) / len(stage2_out),
    )
    table.add_note("paper: O(n^2) -> O(r^2) -> only edges on top-l paths")
    save_table(table, "ablation_elimination_stages")
    return stage1_in, stage1_out, stage2_out


def test_ablation_normalization(benchmark):
    diffs = benchmark.pedantic(run_normalization, rounds=1, iterations=1)
    # Normalization never loses much and usually ties or wins.
    assert sum(diffs) / len(diffs) >= -0.05


def test_ablation_elimination_stages(benchmark):
    stage1_in, stage1_out, stage2_out = benchmark.pedantic(
        run_elimination_stages, rounds=1, iterations=1
    )
    # Each stage strictly shrinks the candidate universe.
    assert max(stage1_out) < min(stage1_in)
    assert all(b <= a for a, b in zip(stage1_out, stage2_out, strict=True))


def test_random_floor(benchmark):
    """BE must clearly beat randomly-chosen candidate edges."""

    def run():
        graph = datasets.load("twitter", num_nodes=500, seed=0)
        queries = queries_for(graph, count=2, seed=83)
        solver = ReliabilityMaximizer(
            estimator=RecursiveStratifiedSampler(120, seed=6),
            evaluation_samples=600, r=15, l=15,
        )
        be_total, random_total = 0.0, 0.0
        for s, t in queries:
            be_total += solver.maximize(
                graph, s, t, 5, method="be"
            ).gain
            random_total += solver.maximize(
                graph, s, t, 5, method="random"
            ).gain
        return be_total, random_total

    be_total, random_total = benchmark.pedantic(run, rounds=1, iterations=1)
    assert be_total >= random_total
