"""Benchmark: vectorized sampling engine vs the legacy scalar Monte Carlo.

Times ``MonteCarloEstimator`` in both modes on synthetic uncertain
graphs — single-pair ``reliability`` at Z=1000 on a 1k-node graph (the
acceptance gate: the engine must be >= 5x faster) and the batched
``reliability_many`` amortization on a pair workload.

Usage::

    python benchmarks/bench_engine_vectorized.py          # full run, asserts >= 5x
    python benchmarks/bench_engine_vectorized.py --smoke  # quick CI gate + parity check
    python benchmarks/bench_engine_vectorized.py --json out.json  # dump timings
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.graph import assign_uniform, erdos_renyi  # noqa: E402
from repro.reliability import MonteCarloEstimator  # noqa: E402


def build_graph(num_nodes: int, num_edges: int, seed: int = 0):
    graph = erdos_renyi(num_nodes, num_edges=num_edges, seed=seed)
    return assign_uniform(graph, 0.05, 0.5, seed=seed + 1)


def pick_queries(graph, count: int):
    """Spread (s, t) pairs across the node range, skipping s == t."""
    n = graph.num_nodes
    pairs = []
    step = max(1, n // (count + 1))
    for i in range(count):
        s = (i * step) % n
        t = (n - 1 - i * step) % n
        if s != t:
            pairs.append((s, t))
    return pairs or [(0, n - 1)]


def time_estimator(estimator, graph, pairs) -> float:
    start = time.perf_counter()
    for s, t in pairs:
        estimator.reliability(graph, s, t)
    return time.perf_counter() - start


def run(smoke: bool, json_path: str | None = None) -> int:
    if smoke:
        num_nodes, num_edges, z, repeats = 200, 600, 256, 2
        required_speedup = 1.0  # smoke only gates "runs and agrees"
    else:
        num_nodes, num_edges, z, repeats = 1000, 3000, 1000, 3
        required_speedup = 5.0

    graph = build_graph(num_nodes, num_edges)
    pairs = pick_queries(graph, repeats)
    print(
        f"graph: n={graph.num_nodes} m={graph.num_edges} "
        f"Z={z} queries={len(pairs)}"
    )

    scalar = MonteCarloEstimator(z, seed=1, vectorized=False)
    vectorized = MonteCarloEstimator(z, seed=1, vectorized=True)

    # Warm-up compiles the CSR cache so the timed loop measures the
    # steady state selection loops actually run in.
    vectorized.reliability(graph, *pairs[0])

    scalar_s = time_estimator(scalar, graph, pairs)
    vector_s = time_estimator(vectorized, graph, pairs)
    speedup = scalar_s / vector_s if vector_s > 0 else float("inf")
    print(f"scalar MC:     {scalar_s * 1000:9.1f} ms")
    print(f"vectorized MC: {vector_s * 1000:9.1f} ms")
    print(f"speedup:       {speedup:9.1f}x (required >= {required_speedup}x)")

    # Batched API: many pairs against one compiled plan + world batch.
    many_pairs = pick_queries(graph, 50)
    start = time.perf_counter()
    batched = MonteCarloEstimator(z, seed=2).reliability_many(graph, many_pairs)
    many_s = time.perf_counter() - start
    print(
        f"reliability_many: {len(many_pairs)} pairs in {many_s * 1000:.1f} ms "
        f"({many_s * 1000 / len(many_pairs):.2f} ms/pair)"
    )
    assert len(batched) == len(many_pairs)

    # Statistical agreement between the two paths on one query.
    s, t = pairs[0]
    a = MonteCarloEstimator(max(z, 2000), seed=3, vectorized=True).reliability(
        graph, s, t
    )
    b = MonteCarloEstimator(max(z, 2000), seed=4, vectorized=False).reliability(
        graph, s, t
    )
    print(f"parity check R({s},{t}): vectorized={a:.4f} scalar={b:.4f}")
    if json_path:
        report = {
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "num_samples": z,
            "num_queries": len(pairs),
            "scalar_seconds": scalar_s,
            "vectorized_seconds": vector_s,
            "speedup": speedup,
            "required_speedup": required_speedup,
            "reliability_many_seconds": many_s,
            "reliability_many_pairs": len(many_pairs),
        }
        Path(json_path).write_text(json.dumps(report, indent=2))
        print(f"wrote {json_path}")
    if abs(a - b) > 0.08:
        print("FAIL: vectorized and scalar estimates diverge")
        return 1
    if speedup < required_speedup:
        print(f"FAIL: speedup {speedup:.1f}x below {required_speedup}x")
        return 1
    print("OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small graph / small Z quick check for CI",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the timing report as JSON",
    )
    args = parser.parse_args()
    return run(smoke=args.smoke, json_path=args.json)


if __name__ == "__main__":
    raise SystemExit(main())
