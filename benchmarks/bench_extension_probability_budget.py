"""Extension bench: total-probability-budget MRP maximization (§9).

The paper's future-work proposal: instead of k edges at fixed zeta,
spend a total probability budget B across up to k new edges.  The
implementation (repro.core.probability_budget) is exact for the MRP
objective.  This bench sweeps B and checks the structural trade-off:
small budgets concentrate on one strong edge, large budgets spread over
multi-edge shortcuts when that shortens the -log p path.
"""


from repro.core import ReliabilityMaximizer, improve_mrp_with_probability_budget
from repro.graph import fixed_new_edge_probability
from repro.reliability import RecursiveStratifiedSampler
from repro.experiments import ResultTable

from _common import queries_for, save_table
from repro import datasets

BUDGETS = [0.3, 0.6, 1.0, 1.5]
MAX_EDGES = 3


def run():
    graph = datasets.load("lastfm", num_nodes=400, seed=0)
    queries = queries_for(graph, count=2, seed=89)
    solver = ReliabilityMaximizer(
        estimator=RecursiveStratifiedSampler(120, seed=1), r=15, l=15,
    )
    prob_model = fixed_new_edge_probability(0.5)
    table = ResultTable(
        "Extension: total-probability-budget MRP maximization "
        "(lastfm-like, <=3 new edges)",
        ["Budget B", "Mean #edges used", "Mean MRP before",
         "Mean MRP after"],
    )
    rows = {}
    for budget in BUDGETS:
        edges_used, before, after = 0.0, 0.0, 0.0
        for s, t in queries:
            space = solver.candidates(graph, s, t, prob_model)
            solution = improve_mrp_with_probability_budget(
                graph, s, t, MAX_EDGES, budget,
                candidates=space.edge_pairs(),
            )
            edges_used += len(solution.edges)
            before += solution.old_probability
            after += solution.new_probability
        n = len(queries)
        table.add_row(budget, edges_used / n, before / n, after / n)
        rows[budget] = (edges_used / n, before / n, after / n)
    table.add_note(
        "future work from the paper's conclusion: budget allocation is "
        "exact for the MRP objective (even split + constrained search)"
    )
    save_table(table, "extension_probability_budget")
    return rows


def test_extension_probability_budget(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    afters = [rows[b][2] for b in BUDGETS]
    # A larger probability budget can never produce a worse MRP.
    assert all(b >= a - 1e-9 for a, b in zip(afters, afters[1:], strict=False))
    # Every budget at least matches the no-addition MRP.
    for budget in BUDGETS:
        assert rows[budget][2] >= rows[budget][1] - 1e-9
