"""Table 22: scalability of BE with graph size.

Node-sampled subgraphs of the twitter-like dataset at increasing sizes.
Paper's shape: running time and memory grow roughly linearly with the
graph size (the pipeline only ever touches the query-relevant region
plus an O(r^2 + l) selection problem).
"""


from repro.experiments import (
    ResultTable,
    SingleStProtocol,
    compare_methods_single_st,
    default_estimator_factory,
)
from repro.graph import node_sampled_subgraph

from _common import queries_for, save_table
from repro import datasets

SIZES = [250, 500, 1000, 2000]


def run():
    full = datasets.load("twitter", num_nodes=max(SIZES), seed=0)
    table = ResultTable(
        "Table 22: scalability of BE (twitter-like subgraphs, k=5)",
        ["#Nodes", "BE gain", "BE time (s)", "Peak MB"],
    )
    per_size = {}
    for size in SIZES:
        graph = (
            full if size == max(SIZES)
            else node_sampled_subgraph(full, size, seed=1)
        )
        try:
            queries = queries_for(graph, count=2, seed=61)
        except RuntimeError:
            # Heavily subsampled graphs may lack 3-5 hop pairs.
            queries = queries_for(graph, count=2, seed=61, min_hops=2,
                                  max_hops=6)
        protocol = SingleStProtocol(
            k=5, zeta=0.5, r=15, l=15, evaluation_samples=500,
            track_memory=True,
            estimator_factory=default_estimator_factory(120),
        )
        stats = compare_methods_single_st(graph, queries, ["be"], protocol)
        table.add_row(
            size,
            stats["be"].mean_gain,
            stats["be"].mean_seconds,
            stats["be"].mean_peak_mb,
        )
        per_size[size] = stats
    table.add_note(
        "paper (1M-6M nodes): time 101s -> 141s, memory 6.8 -> 9.8 GB "
        "— both roughly linear"
    )
    save_table(table, "table22_scalability")
    return per_size


def test_table22(benchmark):
    per_size = benchmark.pedantic(run, rounds=1, iterations=1)
    small = per_size[SIZES[0]]["be"].mean_seconds
    large = per_size[SIZES[-1]]["be"].mean_seconds
    scale = SIZES[-1] / SIZES[0]
    # Sub-quadratic growth: an 8x graph must not cost anywhere near 64x.
    assert large <= small * scale * 4
    for size in SIZES:
        assert per_size[size]["be"].mean_gain >= -0.02
