"""Table 20: sensitivity to the distance constraint h on new edges.

Only node pairs within h hops may receive a new edge.  Paper's shape:
larger h admits more (and remoter) candidate links, so the gain grows
with h — but so does the running time; h=3 is the practical default.
"""


from repro.experiments import (
    ResultTable,
    SingleStProtocol,
    compare_methods_single_st,
    default_estimator_factory,
)

from _common import queries_for, save_table
from repro import datasets

H_VALUES = [2, 3, 4, 5]


def run():
    graph = datasets.load("twitter", num_nodes=500, seed=0)
    queries = queries_for(graph, count=2, seed=53, min_hops=4, max_hops=5)
    table = ResultTable(
        "Table 20: varying distance constraint h for new edges "
        "(twitter-like, k=5)",
        ["h", "BE gain", "BE time (s)"],
    )
    per_h = {}
    for h in H_VALUES:
        protocol = SingleStProtocol(
            k=5, zeta=0.5, r=15, l=15, h=h, evaluation_samples=500,
            estimator_factory=default_estimator_factory(120),
        )
        stats = compare_methods_single_st(graph, queries, ["be"], protocol)
        table.add_row(h, stats["be"].mean_gain, stats["be"].mean_seconds)
        per_h[h] = stats
    table.add_note(
        "paper: gain 0.11 -> 0.22 as h goes 2 -> 5; time roughly doubles"
    )
    save_table(table, "table20_vary_h")
    return per_h


def test_table20(benchmark):
    per_h = benchmark.pedantic(run, rounds=1, iterations=1)
    gains = [per_h[h]["be"].mean_gain for h in H_VALUES]
    # Looser constraint cannot hurt: best gain is at the largest h
    # (up to evaluation noise).
    assert max(gains[-2:]) >= max(gains[:2]) - 0.05
