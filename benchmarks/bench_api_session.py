"""Benchmark: session-batched workloads vs cold per-call facade queries.

The point of :class:`repro.api.Session` is amortization: an N-query
workload pays one CSR compilation and one world-sampling pass, and pairs
sharing a source share one batch-BFS sweep.  This benchmark times a
50-pair-query workload both ways on a 1k-node graph and asserts the
session is >= 3x faster (the PR gate), then reports the numbers as JSON.

The gated workload is the paper's multi-source-target query shape
(Tables 23-25): an S x T block of pairs — 10 sources x 5 targets = 50
pair queries.  A second, un-gated workload of 50 all-distinct pairs is
also reported; there the sweep cost cannot be shared across sources, so
the speedup is just the compile+sampling amortization (~2x).

"Cold" means what a fresh process per query would see: the graph's
cached compilation is dropped before every facade call.

Usage::

    python benchmarks/bench_api_session.py                 # full gate (>= 3x)
    python benchmarks/bench_api_session.py --smoke         # quick CI check
    python benchmarks/bench_api_session.py --json out.json # also dump timings
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.api import Session, Workload  # noqa: E402
from repro.core import ReliabilityMaximizer  # noqa: E402
from repro.graph import assign_uniform, erdos_renyi  # noqa: E402

CSR_CACHE_ATTR = "_engine_csr_cache"


def build_graph(num_nodes: int, num_edges: int, seed: int = 0):
    graph = erdos_renyi(num_nodes, num_edges=num_edges, seed=seed)
    return assign_uniform(graph, 0.05, 0.5, seed=seed + 1)


def st_block_queries(graph, num_sources: int, per_source: int):
    """S x T pair block (the paper's multi-source-target workload)."""
    n = graph.num_nodes
    sources = [(i * n) // (num_sources + 1) for i in range(num_sources)]
    targets = [n - 1 - (j * n) // (per_source + 2) for j in range(per_source)]
    return [(s, t) for s in sources for t in targets if s != t]


def distinct_pair_queries(graph, count: int):
    """Pairs with all-distinct sources spread across the node range."""
    n = graph.num_nodes
    pairs = []
    step = max(1, n // (count + 1))
    for i in range(count):
        s = (i * step) % n
        t = (n - 1 - i * step) % n
        if s != t:
            pairs.append((s, t))
    return pairs or [(0, n - 1)]


def time_cold_facade(graph, pairs, samples: int, seed: int):
    """N independent facade calls, each paying compile + sampling."""
    values = []
    start = time.perf_counter()
    for s, t in pairs:
        if hasattr(graph, CSR_CACHE_ATTR):
            delattr(graph, CSR_CACHE_ATTR)  # a cold process compiles anew
        solver = ReliabilityMaximizer(
            evaluation_samples=samples, evaluation_seed=seed
        )
        values.append(solver.evaluate(graph, s, t))
    return time.perf_counter() - start, values


def time_session(graph, pairs, samples: int, seed: int):
    """One session, one workload: compile once, sample worlds once."""
    if hasattr(graph, CSR_CACHE_ATTR):
        delattr(graph, CSR_CACHE_ATTR)  # session starts cold too
    start = time.perf_counter()
    session = Session(graph, seed=seed)
    results = session.run(Workload.reliability(pairs, samples=samples, seed=seed))
    elapsed = time.perf_counter() - start
    return elapsed, [r.values[0] for r in results]


def compare(graph, pairs, samples: int, label: str):
    cold_s, cold_values = time_cold_facade(graph, pairs, samples, seed=17)
    session_s, session_values = time_session(graph, pairs, samples, seed=17)
    speedup = cold_s / session_s if session_s > 0 else float("inf")
    print(f"[{label}] {len(pairs)} pair queries")
    print(f"  cold facade calls: {cold_s * 1000:9.1f} ms "
          f"({cold_s * 1000 / len(pairs):.2f} ms/query)")
    print(f"  session workload:  {session_s * 1000:9.1f} ms "
          f"({session_s * 1000 / len(pairs):.2f} ms/query)")
    print(f"  speedup:           {speedup:9.1f}x")
    mismatches = [
        (pair, a, b)
        for pair, a, b in zip(pairs, cold_values, session_values, strict=True)
        if a != b
    ]
    return {
        "workload": label,
        "num_queries": len(pairs),
        "cold_facade_seconds": cold_s,
        "session_seconds": session_s,
        "speedup": speedup,
        "value_mismatches": len(mismatches),
    }


def run(smoke: bool, json_path: str | None) -> int:
    if smoke:
        num_nodes, num_edges, z = 200, 600, 256
        num_sources, per_source = 4, 5  # 20 pair queries
        required_speedup = 1.0  # smoke only gates "runs and agrees"
    else:
        num_nodes, num_edges, z = 1000, 3000, 1000
        num_sources, per_source = 10, 5  # 50 pair queries
        required_speedup = 3.0

    graph = build_graph(num_nodes, num_edges)
    print(f"graph: n={graph.num_nodes} m={graph.num_edges} Z={z}")

    block = compare(
        graph,
        st_block_queries(graph, num_sources, per_source),
        z,
        label="s-t block (10 sources x 5 targets)" if not smoke
        else "s-t block",
    )
    distinct = compare(
        graph,
        distinct_pair_queries(graph, num_sources * per_source),
        z,
        label="all-distinct pairs",
    )

    report = {
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "num_samples": z,
        "required_speedup": required_speedup,
        "workloads": [block, distinct],
    }
    if json_path:
        Path(json_path).write_text(json.dumps(report, indent=2))
        print(f"wrote {json_path}")

    # Same seed, same Z, same plan: the session's shared batch must give
    # bit-for-bit the values the one-off facade evaluations produced.
    for wl in (block, distinct):
        if wl["value_mismatches"]:
            print(f"FAIL: {wl['value_mismatches']} value mismatches "
                  f"in {wl['workload']}")
            return 1
    if block["speedup"] < required_speedup:
        print(f"FAIL: speedup {block['speedup']:.1f}x below "
              f"{required_speedup}x")
        return 1
    print("OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small graph / small workload quick check for CI",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the timing report as JSON",
    )
    args = parser.parse_args()
    return run(smoke=args.smoke, json_path=args.json)


if __name__ == "__main__":
    raise SystemExit(main())
