"""Table 2 + Figure 2/3: problem-characterization worked examples.

Regenerates the paper's Table 2 — the reliability of the three possible
k=2 solutions on the Figure 3 gadget under different (alpha, zeta) — and
checks the non-sub/supermodularity numbers of Figure 2, using exact
reliability computation.
"""

import pytest

from repro.graph import UncertainGraph
from repro.reliability import exact_reliability

from _common import save_table
from repro.experiments import ResultTable

S, A, B, T = 0, 1, 2, 3

ROWS = [
    # alpha, zeta, paper's values for {sA,sB}, {sA,Bt}, {sB,Bt}
    (0.5, 0.7, 0.403, 0.473, 0.543),
    (0.5, 0.3, 0.203, 0.173, 0.143),
    (0.9, 0.7, 0.800, 0.674, 0.660),
]


def figure3_graph(alpha: float) -> UncertainGraph:
    g = UncertainGraph()
    g.add_node(S)
    g.add_edge(A, B, alpha)
    g.add_edge(A, T, alpha)
    return g


def reliability_with(alpha, zeta, new_edges):
    return exact_reliability(
        figure3_graph(alpha), S, T, [(u, v, zeta) for u, v in new_edges]
    )


def run_table2():
    table = ResultTable(
        "Table 2: reliability of the three k=2 solutions (Figure 3 gadget)",
        ["alpha", "zeta", "{sA,sB}", "{sA,Bt}", "{sB,Bt}", "paper"],
    )
    results = []
    for alpha, zeta, p1, p2, p3 in ROWS:
        r1 = reliability_with(alpha, zeta, [(S, A), (S, B)])
        r2 = reliability_with(alpha, zeta, [(S, A), (B, T)])
        r3 = reliability_with(alpha, zeta, [(S, B), (B, T)])
        table.add_row(
            alpha, zeta, r1, r2, r3, f"{p1:.3f}/{p2:.3f}/{p3:.3f}"
        )
        results.append(((alpha, zeta), (r1, r2, r3), (p1, p2, p3)))
    save_table(table, "table02_characterization")
    return results


def test_table2_matches_paper(benchmark):
    results = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    for (_, computed, paper) in results:
        for mine, theirs in zip(computed, paper, strict=True):
            assert mine == pytest.approx(theirs, abs=1e-3)
    # The winning solution changes across rows (Observations 1 and 2).
    winners = [max(range(3), key=lambda i: computed[i])
               for (_, computed, _) in results]
    assert len(set(winners)) >= 2


def test_figure2_modularity_counterexample(benchmark):
    def run():
        def build(extra):
            g = UncertainGraph()
            for node in (0, 1, 2):
                g.add_node(node)
            for u, v in extra:
                g.add_edge(u, v, 0.5)
            return g

        s, a, t = 0, 1, 2
        values = {
            "R(X)": exact_reliability(build([(s, t)]), s, t),
            "R(X+At)": exact_reliability(build([(s, t), (a, t)]), s, t),
            "R(Y)": exact_reliability(build([(s, t), (s, a)]), s, t),
            "R(Y+At)": exact_reliability(
                build([(s, t), (s, a), (a, t)]), s, t
            ),
        }
        return values

    values = benchmark.pedantic(run, rounds=1, iterations=1)
    assert values["R(X)"] == pytest.approx(0.5)
    assert values["R(X+At)"] == pytest.approx(0.5)
    assert values["R(Y+At)"] == pytest.approx(0.625)
    # Submodularity fails: marginal gain grows with the larger set.
    assert (values["R(X+At)"] - values["R(X)"]) < (
        values["R(Y+At)"] - values["R(Y)"]
    )
