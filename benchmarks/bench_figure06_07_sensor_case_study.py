"""Figures 6-7: the Intel-Lab sensor-network case study.

Two scenarios on the 54-sensor network, three new <=15m links each, with
zeta = the network's average link probability (paper: 0.33):

* Figure 6 — improve reliability from a right-wall sensor to a far
  left-wall sensor (paper: sensor 21 -> 46, 0.40 -> 0.88);
* Figure 7 — improve reliability across the lab's diagonal
  (paper: sensor 15 -> 40, 0.28 -> 0.58).

The stand-in layout follows the published map's shape, so sensor ids
match regions rather than exact devices; the *mechanism* — the solver
bridges the weakly-connected region to a dense one — is asserted.
"""


from repro.datasets import intel_lab
from repro.graph import fixed_new_edge_probability
from repro.reliability import RecursiveStratifiedSampler
from repro.core import ReliabilityMaximizer
from repro.experiments import ResultTable

from _common import save_table

SCENARIOS = [
    # (label, source region sensor, target region sensor)
    ("Figure 6: right wall -> top-left", 5, 41),
    ("Figure 7: bottom strip -> top wall (diagonal)", 15, 44),
]


def run():
    graph = intel_lab.build()
    positions = intel_lab.sensor_positions()
    allowed = set(intel_lab.candidate_links(graph, positions))
    zeta = round(intel_lab.average_link_probability(graph), 2)

    table = ResultTable(
        f"Figures 6/7: sensor case study (54 sensors, 3 new links, "
        f"zeta={zeta}, <=15m constraint)",
        ["Scenario", "Before", "After", "New links"],
    )
    outcomes = []
    # r must span the lab: C(s) and C(t) need to meet in the middle for
    # any candidate pair to satisfy the <= 15 m constraint.
    solver = ReliabilityMaximizer(
        estimator=RecursiveStratifiedSampler(150, seed=5),
        evaluation_samples=1000,
        r=26,
        l=15,
    )
    prob_model = fixed_new_edge_probability(zeta)
    for label, s, t in SCENARIOS:
        space = solver.candidates(graph, s, t, prob_model)
        space.edges = [
            (u, v, p) for u, v, p in space.edges if (u, v) in allowed
        ]
        solution = solver.maximize(
            graph, s, t, 3, zeta=zeta, method="be", candidate_space=space
        )
        links = ", ".join(f"{u}->{v}" for u, v, _ in solution.edges)
        table.add_row(
            label, solution.base_reliability, solution.new_reliability, links
        )
        outcomes.append((label, solution))
    table.add_note(
        "paper: 21->46 improves 0.40 -> 0.88 (links 2->46, 35->46, "
        "37->46); 15->40 improves 0.28 -> 0.58 (links 35->40, 15->10, 15->11)"
    )
    save_table(table, "figure06_07_sensor_case_study")
    return outcomes


def test_figures06_07(benchmark):
    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    for label, solution in outcomes:
        # Three links were installable and they materially improve the
        # connection (paper: 2.1-2.2x).
        assert 1 <= len(solution.edges) <= 3
        assert solution.new_reliability > solution.base_reliability
        assert solution.gain >= 0.1, label

    # The paper's qualitative mechanism: the added links bridge into the
    # target's weakly-connected region (they touch the target side).
    graph = intel_lab.build()
    for (label, solution), (_, s, t) in zip(outcomes, SCENARIOS, strict=True):
        touched = {u for u, v, _ in solution.edges} | {
            v for u, v, _ in solution.edges
        }
        target_region = graph.within_hops(t, 2) | {t}
        assert touched & target_region, label
