"""Tables 12-13: sensitivity to the edge budget k (lastfm, dblp).

Paper's shape: gain grows with k but saturates (large early increments,
tiny late ones); MRP's gain flattens almost immediately (one path can
only use so many new edges); BE stays on top at every k; HC's time grows
linearly in k while the path-based methods barely notice.
"""


from repro.experiments import (
    ResultTable,
    SingleStProtocol,
    compare_methods_single_st,
    default_estimator_factory,
)

from _common import method_label, queries_for, save_table
from repro import datasets

K_VALUES = [2, 3, 5, 8]
METHODS = ["mrp", "ip", "be"]
DATASETS = ["lastfm", "dblp"]


def run():
    results = {}
    for name in DATASETS:
        graph = datasets.load(name, num_nodes=500, seed=0)
        queries = queries_for(graph, count=2, seed=29)
        table = ResultTable(
            f"Tables 12/13: varying budget k ({name}-like, zeta=0.5, "
            f"r=15, l=15)",
            ["k", *[f"{method_label(m)} gain" for m in METHODS],
             *[f"{method_label(m)} time (s)" for m in METHODS]],
        )
        per_k = {}
        for k in K_VALUES:
            protocol = SingleStProtocol(
                k=k, zeta=0.5, r=15, l=15, evaluation_samples=500,
                estimator_factory=default_estimator_factory(120),
            )
            stats = compare_methods_single_st(graph, queries, METHODS, protocol)
            table.add_row(
                k,
                *[stats[m].mean_gain for m in METHODS],
                *[stats[m].mean_seconds for m in METHODS],
            )
            per_k[k] = stats
        table.add_note(
            "paper: gain saturates around k=20-30; MRP flat from the start"
        )
        save_table(table, f"table12_13_vary_k_{name}")
        results[name] = per_k
    return results


def test_tables12_13(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, per_k in results.items():
        be_gains = [per_k[k]["be"].mean_gain for k in K_VALUES]
        # Monotone growth in k, up to evaluation noise.
        assert be_gains[-1] >= be_gains[0] - 0.05
        # MRP's gain varies little with extra budget (single-path cap).
        mrp_gains = [per_k[k]["mrp"].mean_gain for k in K_VALUES]
        assert max(mrp_gains) - min(mrp_gains) <= max(
            0.15, max(be_gains) - min(be_gains) + 0.1
        )
        # BE dominates MRP at the largest budget.
        assert per_k[K_VALUES[-1]]["be"].mean_gain >= (
            per_k[K_VALUES[-1]]["mrp"].mean_gain - 0.05
        )
