"""Benchmark: streaming delta repair vs evict-and-recompute.

The streaming-update claim (:meth:`repro.api.Session.apply_delta`): a
session absorbing a sustained stream of edge edits should *repair* its
cached world batches — re-flipping only the edited edges' keyed coins
and resuming cached reach fixpoints where the edit was monotone —
instead of throwing everything away.  This benchmark drives the same
mixed update+query workload through both strategies: each round applies
a small :class:`~repro.api.GraphDelta` (probability raises, an
insertion, periodic deletions) and then answers a fixed fan-out query
workload at large ``Z``.  The baseline applies the identical edits but
evicts (``Session.invalidate``) — the pre-delta behavior — so every
round pays a full coin-flip pass and full sweeps.

Gates (the PR gate, enforced in nightly CI):

* the streaming (repair) loop is >= 10x faster than evict-and-recompute
  on the sustained update+query workload;
* every per-round answer is **bit-for-bit equal** between the two
  strategies, and the final round equals a cold session built directly
  on the final graph (repair is an optimization, never an
  approximation).

Usage::

    python benchmarks/bench_delta_stream.py                 # full gate (>= 10x)
    python benchmarks/bench_delta_stream.py --smoke         # quick CI check
    python benchmarks/bench_delta_stream.py --json out.json # also dump timings
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np  # noqa: E402

from repro.api import GraphDelta, ReliabilityQuery, Session, Workload  # noqa: E402
from repro.graph import UncertainGraph, assign_uniform, erdos_renyi  # noqa: E402


def build_graph(num_nodes: int, num_edges: int, seed: int = 0) -> UncertainGraph:
    graph = erdos_renyi(num_nodes, num_edges=num_edges, seed=seed)
    return assign_uniform(graph, 0.05, 0.5, seed=seed + 1)


def build_workload(graph: UncertainGraph, num_queries: int, samples: int) -> Workload:
    """A fan-out reliability workload over spread s-t pairs."""
    n = graph.num_nodes
    queries = []
    for i in range(num_queries):
        s = (i * n) // (num_queries + 1)
        t = n - 1 - ((i * n) // (num_queries + 2))
        if s == t:
            t = (t + 1) % n
        queries.append(ReliabilityQuery(s, target=t, samples=samples))
    return Workload(queries)


def script_deltas(
    graph: UncertainGraph, rounds: int, seed: int
) -> list:
    """Deterministic per-round edit scripts for the update stream.

    Each round raises a few existing edge probabilities (monotone:
    cached reach states resume their sweeps) and inserts one fresh
    edge; one mid-stream round deletes a previously inserted edge, so
    the non-monotone repair path (drop dirty states, re-sweep affected
    sources) is part of the measured stream without dominating it —
    matching streams where probability updates vastly outnumber
    retractions.
    """
    rng = np.random.default_rng(seed)
    scratch = graph.copy()
    deltas = []
    inserted: list = []
    for r in range(rounds):
        edges = list(scratch.edges())
        upserts = {}
        picks = rng.choice(len(edges), size=min(2, len(edges)), replace=False)
        for i in picks:
            u, v, p = edges[int(i)]
            upserts[(u, v)] = (u, v, min(1.0, p * 1.02 + 0.005))
        for _ in range(64):  # find a non-adjacent, non-loop pair
            u = int(rng.integers(0, scratch.num_nodes))
            v = int(rng.integers(0, scratch.num_nodes))
            if u != v and not scratch.has_edge(u, v) and (u, v) not in upserts:
                upserts[(u, v)] = (u, v, 0.05)
                inserted.append((u, v))
                break
        deletes = ()
        if r == rounds // 2 and inserted:
            victim = inserted.pop(0)
            if scratch.has_edge(*victim):
                deletes = (victim,)
                upserts.pop(victim, None)
        delta = GraphDelta(upserts=tuple(upserts.values()), deletes=deletes)
        delta.apply_to(scratch)
        deltas.append(delta)
    return deltas, scratch


def run_stream(session: Session, deltas, workload, repair: bool):
    """Apply the scripted stream; returns (seconds, per-round values)."""
    per_round = []
    start = time.perf_counter()
    for delta in deltas:
        if repair:
            session.apply_delta(delta)
        else:
            # The pre-delta strategy: mutate and drop every cache.
            delta.apply_to(session.graph)
            session.invalidate()
        results = session.run(workload)
        per_round.append([v for r in results for v in r.values])
    return time.perf_counter() - start, per_round


def run(smoke: bool, json_path: str | None) -> int:
    if smoke:
        num_nodes, num_edges, z = 150, 450, 1024
        num_queries, rounds = 4, 3
        required_speedup = 1.0  # smoke only gates "runs and agrees"
    else:
        num_nodes, num_edges, z = 600, 1800, 16384
        num_queries, rounds = 6, 24
        required_speedup = 10.0

    graph = build_graph(num_nodes, num_edges)
    workload = build_workload(graph, num_queries, z)
    deltas, final_graph = script_deltas(graph, rounds, seed=23)
    num_edits = sum(d.num_edits for d in deltas)
    print(f"graph: n={graph.num_nodes} m={graph.num_edges} Z={z} "
          f"queries={num_queries} rounds={rounds} edits={num_edits}")

    # Warm both sessions identically before timing the stream.
    evict_session = Session(graph.copy(), seed=17)
    evict_session.run(workload)
    evict_s, evict_rounds = run_stream(
        evict_session, deltas, workload, repair=False
    )

    repair_session = Session(graph.copy(), seed=17)
    repair_session.run(workload)
    repair_s, repair_rounds = run_stream(
        repair_session, deltas, workload, repair=True
    )

    speedup = evict_s / repair_s if repair_s > 0 else float("inf")
    per_round_ms = repair_s * 1000 / rounds
    print(f"  evict-and-recompute stream: {evict_s * 1000:9.1f} ms "
          f"({evict_s * 1000 / rounds:.2f} ms/round)")
    print(f"  repair stream:              {repair_s * 1000:9.1f} ms "
          f"({per_round_ms:.2f} ms/round)")
    print(f"  speedup:                    {speedup:9.1f}x")

    # Repair is an optimization, never an approximation: every round's
    # answers must agree bit-for-bit, and the final round must equal a
    # cold session built directly on the final graph.
    mismatches = 0
    for evict_values, repair_values in zip(evict_rounds, repair_rounds,
                                           strict=True):
        mismatches += sum(
            1 for a, b in zip(evict_values, repair_values, strict=True)
            if a != b
        )
    cold = Session(final_graph.copy(), seed=17)
    cold_values = [v for r in cold.run(workload) for v in r.values]
    cold_mismatches = sum(
        1 for a, b in zip(cold_values, repair_rounds[-1], strict=True)
        if a != b
    )

    report = {
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "num_samples": z,
        "num_queries": num_queries,
        "rounds": rounds,
        "num_edits": num_edits,
        "required_speedup": required_speedup,
        "evict_seconds": evict_s,
        "repair_seconds": repair_s,
        "speedup": speedup,
        "value_mismatches": mismatches,
        "cold_mismatches": cold_mismatches,
    }
    if json_path:
        Path(json_path).write_text(json.dumps(report, indent=2))
        print(f"wrote {json_path}")

    if mismatches:
        print(f"FAIL: {mismatches} repair values differ from evict values")
        return 1
    if cold_mismatches:
        print(f"FAIL: {cold_mismatches} final values differ from a cold "
              f"session on the final graph")
        return 1
    if speedup < required_speedup:
        print(f"FAIL: speedup {speedup:.1f}x below {required_speedup}x")
        return 1
    print("OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small graph / few rounds quick check for CI",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the timing report as JSON",
    )
    args = parser.parse_args()
    return run(smoke=args.smoke, json_path=args.json)


if __name__ == "__main__":
    raise SystemExit(main())
