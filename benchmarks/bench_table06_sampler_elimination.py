"""Table 6: MC vs RSS sample size and time for search-space elimination.

For each dataset, find the number of samples each sampler needs until the
index of dispersion rho_Z drops below the threshold, then time the
reliability-based elimination step (two reachability vectors) at that
sample size.  Paper's finding: RSS converges with about half the samples
and cuts elimination time by 50-90%.
"""

import time


from repro.graph import fixed_new_edge_probability
from repro.reliability import (
    MonteCarloEstimator,
    RecursiveStratifiedSampler,
    required_samples,
)
from repro.core import eliminate_search_space
from repro.experiments import ResultTable

from _common import load, queries_for, save_table

DATASETS = ["lastfm", "as-topology", "dblp", "twitter"]
CANDIDATE_SIZES = (50, 100, 250, 500)
RHO_THRESHOLD = 5e-3  # paper uses 1e-3 with 100x100 runs; scaled down


def mc_factory(z, s):
    return MonteCarloEstimator(z, seed=s)


def rss_factory(z, s):
    return RecursiveStratifiedSampler(z, seed=s)


def elimination_time(graph, queries, estimator) -> float:
    start = time.perf_counter()
    for s, t in queries:
        eliminate_search_space(
            graph, s, t, r=15,
            new_edge_prob=fixed_new_edge_probability(0.5),
            estimator=estimator,
        )
    return (time.perf_counter() - start) / len(queries)


def run():
    table = ResultTable(
        "Table 6: sampler comparison for reliability-based search-space "
        "elimination (Z = samples to reach rho < threshold)",
        ["Dataset", "MC Z", "MC time (s)", "RSS Z", "RSS time (s)"],
    )
    rows = {}
    for name in DATASETS:
        graph = load(name, num_nodes=400, seed=0)
        queries = queries_for(graph, count=2, seed=21)
        z_mc, _ = required_samples(
            mc_factory, graph, queries,
            candidate_sizes=CANDIDATE_SIZES,
            rho_threshold=RHO_THRESHOLD, repeats=5,
        )
        z_rss, _ = required_samples(
            rss_factory, graph, queries,
            candidate_sizes=CANDIDATE_SIZES,
            rho_threshold=RHO_THRESHOLD, repeats=5,
        )
        t_mc = elimination_time(graph, queries, MonteCarloEstimator(z_mc, seed=3))
        t_rss = elimination_time(
            graph, queries, RecursiveStratifiedSampler(z_rss, seed=3)
        )
        table.add_row(name, z_mc, t_mc, z_rss, t_rss)
        rows[name] = (z_mc, t_mc, z_rss, t_rss)
    table.add_note(
        "paper: MC needs 500-1000 samples, RSS 250-500; RSS cuts "
        "elimination time by 50-90%"
    )
    save_table(table, "table06_sampler_elimination")
    return rows


def test_table06(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # RSS never needs more samples than MC on a majority of datasets.
    wins = sum(1 for z_mc, _, z_rss, _ in rows.values() if z_rss <= z_mc)
    assert wins >= len(rows) // 2 + 1
