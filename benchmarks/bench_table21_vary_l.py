"""Table 21: sensitivity to the number of most-reliable paths l.

Paper's shape: gain increases with l and saturates around l=30 (here the
scaled graphs saturate earlier); running time is linear in l for both IP
and BE.
"""


from repro.experiments import (
    ResultTable,
    SingleStProtocol,
    compare_methods_single_st,
    default_estimator_factory,
)

from _common import queries_for, save_table
from repro import datasets

L_VALUES = [3, 6, 12, 24]
METHODS = ["ip", "be"]


def run():
    graph = datasets.load("twitter", num_nodes=500, seed=0)
    queries = queries_for(graph, count=2, seed=59)
    table = ResultTable(
        "Table 21: varying #most-reliable paths l (twitter-like, k=5)",
        ["l", "IP gain", "BE gain", "IP time (s)", "BE time (s)"],
    )
    per_l = {}
    for l in L_VALUES:
        protocol = SingleStProtocol(
            k=5, zeta=0.5, r=15, l=l, evaluation_samples=500,
            estimator_factory=default_estimator_factory(120),
        )
        stats = compare_methods_single_st(graph, queries, METHODS, protocol)
        table.add_row(
            l,
            stats["ip"].mean_gain, stats["be"].mean_gain,
            stats["ip"].mean_seconds, stats["be"].mean_seconds,
        )
        per_l[l] = stats
    table.add_note("paper: gain saturates at l=30; time linear in l")
    save_table(table, "table21_vary_l")
    return per_l


def test_table21(benchmark):
    per_l = benchmark.pedantic(run, rounds=1, iterations=1)
    gains = [per_l[l]["be"].mean_gain for l in L_VALUES]
    # More paths never hurt materially.
    assert gains[-1] >= gains[0] - 0.05
    # Saturation: the last doubling of l adds less than the first.
    first_step = gains[1] - gains[0]
    last_step = gains[-1] - gains[-2]
    assert last_step <= first_step + 0.1
