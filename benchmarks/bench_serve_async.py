"""Benchmark: coalesced async serving vs sequential per-request sessions.

The serving layer's claim (:mod:`repro.serve`): folding concurrently
arriving single-query requests into one ``Session.run`` workload makes
a server pay one compile + one coin-flip pass + fused sweeps per
coalescing window instead of per request.  This benchmark simulates 64
concurrent clients, each firing one reliability query at an
:class:`~repro.serve.AsyncSession`, and compares against the
no-coalescing baseline a naive server would be: one fresh session per
request, answered sequentially (each request pays its own compile and
sampling, as a cold per-request process would).

Gates (the PR gate, enforced in nightly CI):

* coalesced serving >= 3x faster than sequential per-request sessions
  at 64 concurrent clients;
* every coalesced response **bit-for-bit equal** to what a one-off
  ``Session.run`` of the same query returns.

Usage::

    python benchmarks/bench_serve_async.py                 # full gate (>= 3x)
    python benchmarks/bench_serve_async.py --smoke         # quick CI check
    python benchmarks/bench_serve_async.py --json out.json # also dump timings
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.api import ReliabilityQuery, Session, Workload  # noqa: E402
from repro.graph import assign_uniform, erdos_renyi  # noqa: E402
from repro.serve import AsyncSession  # noqa: E402

CSR_CACHE_ATTR = "_engine_csr_cache"


def build_graph(num_nodes: int, num_edges: int, seed: int = 0):
    graph = erdos_renyi(num_nodes, num_edges=num_edges, seed=seed)
    return assign_uniform(graph, 0.05, 0.5, seed=seed + 1)


def drop_csr_cache(graph) -> None:
    """Make the next compile cold, as a fresh server process would be."""
    if hasattr(graph, CSR_CACHE_ATTR):
        delattr(graph, CSR_CACHE_ATTR)


def client_queries(graph, num_clients: int, samples: int):
    """One query per client: an S x T block of pairs (S = T = sqrt)."""
    n = graph.num_nodes
    side = max(1, int(round(num_clients ** 0.5)))
    sources = [(i * n) // (side + 1) for i in range(side)]
    targets = [n - 1 - (j * n) // (side + 2) for j in range(side)]
    queries = [
        ReliabilityQuery(s, target=t, samples=samples)
        for s in sources for t in targets if s != t
    ]
    return queries[:num_clients]


def time_sequential(graph, queries, seed: int):
    """The no-coalescing baseline: one cold session per request."""
    values = []
    start = time.perf_counter()
    for query in queries:
        drop_csr_cache(graph)
        session = Session(graph, seed=seed)
        [result] = session.run(Workload([query]))
        values.append(result.values[0])
    return time.perf_counter() - start, values


def time_coalesced(graph, queries, seed: int, max_batch: int, wait_ms: float):
    """64 concurrent clients against one coalescing AsyncSession."""
    drop_csr_cache(graph)  # the serving process starts cold too

    async def _run():
        async with AsyncSession(
            graph, seed=seed, max_batch=max_batch, max_wait_ms=wait_ms
        ) as serving:
            results = await asyncio.gather(
                *(serving.submit(query) for query in queries)
            )
            return [r.values[0] for r in results], serving.stats.as_dict()

    start = time.perf_counter()
    values, stats = asyncio.run(_run())
    return time.perf_counter() - start, values, stats


def run(smoke: bool, json_path: str | None) -> int:
    if smoke:
        num_nodes, num_edges, z = 200, 600, 256
        num_clients = 16
        required_speedup = 1.0  # smoke only gates "runs and agrees"
    else:
        num_nodes, num_edges, z = 1000, 3000, 1000
        num_clients = 64
        required_speedup = 3.0

    graph = build_graph(num_nodes, num_edges)
    queries = client_queries(graph, num_clients, z)
    print(f"graph: n={graph.num_nodes} m={graph.num_edges} Z={z} "
          f"clients={len(queries)}")

    sequential_s, sequential_values = time_sequential(graph, queries, seed=17)
    coalesced_s, coalesced_values, stats = time_coalesced(
        graph, queries, seed=17, max_batch=num_clients, wait_ms=10.0
    )
    speedup = sequential_s / coalesced_s if coalesced_s > 0 else float("inf")

    print(f"  sequential per-request sessions: {sequential_s * 1000:9.1f} ms "
          f"({sequential_s * 1000 / len(queries):.2f} ms/request)")
    print(f"  coalesced async serving:         {coalesced_s * 1000:9.1f} ms "
          f"({coalesced_s * 1000 / len(queries):.2f} ms/request)")
    print(f"  speedup:                         {speedup:9.1f}x")
    print(f"  coalescer: {stats['batches']} batch(es), "
          f"largest {stats['largest_batch']}, "
          f"mean size {stats['mean_batch_size']:.1f}")

    # The coalesced path must return exactly what one-off Session.run
    # calls return: same (Z, seed) worlds, same plan, same values.
    mismatches = sum(
        1 for a, b in zip(sequential_values, coalesced_values, strict=True) if a != b
    )

    report = {
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "num_samples": z,
        "num_clients": len(queries),
        "required_speedup": required_speedup,
        "sequential_seconds": sequential_s,
        "coalesced_seconds": coalesced_s,
        "speedup": speedup,
        "value_mismatches": mismatches,
        "coalescer": stats,
    }
    if json_path:
        Path(json_path).write_text(json.dumps(report, indent=2))
        print(f"wrote {json_path}")

    if mismatches:
        print(f"FAIL: {mismatches} coalesced responses differ from "
              f"one-off Session.run results")
        return 1
    if speedup < required_speedup:
        print(f"FAIL: speedup {speedup:.1f}x below {required_speedup}x")
        return 1
    print("OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small graph / few clients quick check for CI",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the timing report as JSON",
    )
    args = parser.parse_args()
    return run(smoke=args.smoke, json_path=args.json)


if __name__ == "__main__":
    raise SystemExit(main())
