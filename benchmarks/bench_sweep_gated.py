"""Benchmark: frontier-gated fused sweeps + incremental selection restarts.

Two gates from the sweep-engine rework:

* **Gated multi-source fusion.**  ``batch_reach_multi(gated=True)``
  gathers only the active ``(arc, source)`` pairs per sweep, so fusing
  ``S`` sources costs ``max`` (not ``sum``) of the per-source sweep
  counts without the old full-width byte blowup.  On sweep-bound graphs
  (high diameter, near-deterministic edges — the paper's road/sensor
  chains) the fused pass must be **>= 3x** faster than per-source
  sweeps at Z=4096 / S=16 on a 1k-node graph; on frontier-dense random
  graphs it must at least break even (the measured crossover that
  replaced the hard-coded ``_FUSE_MAX_WORDS = 4`` cliff).  All dispatch
  paths are bit-for-bit identical.

* **Incremental selection restarts.**  Greedy rounds resume the
  forward/reverse sweeps from the committed winner's endpoints instead
  of re-sweeping all worlds from s and t; at k=20 the per-round cost
  must drop **>= 2x**, with selections identical to the full re-sweep
  path.

Usage::

    python benchmarks/bench_sweep_gated.py             # full gates
    python benchmarks/bench_sweep_gated.py --smoke     # quick CI parity
    python benchmarks/bench_sweep_gated.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np  # noqa: E402

from repro.engine import (  # noqa: E402
    SelectionGainKernel,
    batch_reach,
    batch_reach_multi,
    compile_plan,
    sample_worlds,
)
from repro.graph import UncertainGraph, assign_uniform, erdos_renyi  # noqa: E402


def ring_graph(n: int, seed: int = 7) -> UncertainGraph:
    """High-reliability cycle: deep sweeps, narrow frontiers.

    The sweep-bound regime (diameter ~n/2, most nodes change once per
    wave) where per-source sweeps drown in per-sweep overhead — road /
    pipeline / sensor-chain topologies.
    """
    rng = np.random.default_rng(seed)
    g = UncertainGraph()
    for i in range(n):
        g.add_edge(i, (i + 1) % n, float(rng.uniform(0.95, 0.999)))
    return g


def er_graph(n: int, m: int, seed: int = 0) -> UncertainGraph:
    """Frontier-dense random graph: the bandwidth-bound regime."""
    return assign_uniform(
        erdos_renyi(n, num_edges=m, seed=seed), 0.05, 0.5, seed=seed + 1
    )


def best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def sweep_case(graph, num_samples: int, num_sources: int, repeats: int):
    """Time per-source vs ungated-fused vs gated-fused; check parity."""
    plan = compile_plan(graph)
    batch = sample_worlds(plan, num_samples, np.random.default_rng(9))
    sources = [
        int(x) for x in np.linspace(0, graph.num_nodes - 1, num_sources)
    ]
    singles = [batch_reach(plan, batch, [s]) for s in sources]
    mismatches = 0
    for gated in (True, False, None):
        fused = batch_reach_multi(plan, batch, sources, gated=gated)
        for i in range(len(sources)):
            if not np.array_equal(fused[:, i], singles[i]):
                mismatches += 1
    per_source = best_of(
        lambda: [batch_reach(plan, batch, [s]) for s in sources], repeats
    )
    gated = best_of(
        lambda: batch_reach_multi(plan, batch, sources, gated=True), repeats
    )
    ungated = best_of(
        lambda: batch_reach_multi(plan, batch, sources, gated=False), repeats
    )
    return {
        "num_samples": num_samples,
        "num_words": (num_samples + 63) // 64,
        "num_sources": num_sources,
        "per_source_seconds": per_source,
        "gated_seconds": gated,
        "ungated_seconds": ungated,
        "gated_speedup": per_source / gated if gated > 0 else float("inf"),
        "ungated_speedup": (
            per_source / ungated if ungated > 0 else float("inf")
        ),
        "parity_mismatches": mismatches,
    }


def missing_candidates(graph, count: int, seed: int = 7):
    n = graph.num_nodes
    rng = np.random.default_rng(seed)
    seen = set()
    pairs = []
    while len(pairs) < count:
        u, v = (int(x) for x in rng.integers(0, n, size=2))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in seen or graph.has_edge(*key):
            continue
        seen.add(key)
        pairs.append((key[0], key[1], 0.5))
    return pairs


def selection_case(graph, num_samples: int, num_candidates: int, k: int,
                   repeats: int):
    """Time incremental vs full-re-sweep greedy selection; check parity."""
    s, t = 0, graph.num_nodes - 1
    candidates = missing_candidates(graph, num_candidates)
    incremental = SelectionGainKernel(
        graph, num_samples, seed=17
    ).greedy_select(s, t, k, candidates)
    full = SelectionGainKernel(
        graph, num_samples, seed=17, incremental=False
    ).greedy_select(s, t, k, candidates)
    inc_seconds = best_of(
        lambda: SelectionGainKernel(graph, num_samples, seed=17)
        .greedy_select(s, t, k, candidates),
        repeats,
    )
    full_seconds = best_of(
        lambda: SelectionGainKernel(
            graph, num_samples, seed=17, incremental=False
        ).greedy_select(s, t, k, candidates),
        repeats,
    )
    return {
        "num_samples": num_samples,
        "num_candidates": num_candidates,
        "k": k,
        "incremental_seconds": inc_seconds,
        "full_resweep_seconds": full_seconds,
        "per_round_speedup": (
            full_seconds / inc_seconds if inc_seconds > 0 else float("inf")
        ),
        "selections_identical": incremental == full,
    }


def run(smoke: bool, json_path: str | None) -> int:
    if smoke:
        ring_n, er_n, er_m = 200, 200, 600
        widths = [64, 256]
        gate_z, gate_s = 256, 8
        sel_z, sel_c, sel_k = 256, 30, 4
        repeats = 1
        sweep_floor = 0.0   # parity-only in CI; timings too noisy
        round_floor = 0.0
    else:
        ring_n, er_n, er_m = 1000, 1000, 3000
        widths = [64, 256, 1024, 4096]
        gate_z, gate_s = 4096, 16
        sel_z, sel_c, sel_k = 1000, 200, 20
        repeats = 3
        sweep_floor = 3.0
        round_floor = 2.0

    ring = ring_graph(ring_n)
    er = er_graph(er_n, er_m)
    report = {
        "sweep_floor": sweep_floor,
        "round_floor": round_floor,
        "sweep": {"ring": [], "er": []},
        "selection": None,
    }

    print("== frontier-gated fused multi-source sweeps ==")
    failures = []
    for label, graph in (("ring", ring), ("er", er)):
        for z in widths:
            case = sweep_case(graph, z, gate_s, repeats)
            report["sweep"][label].append(case)
            print(
                f"[{label}] Z={z:5d} W={case['num_words']:3d} S={gate_s}: "
                f"per-source {case['per_source_seconds'] * 1000:8.1f} ms  "
                f"gated {case['gated_seconds'] * 1000:8.1f} ms "
                f"({case['gated_speedup']:5.2f}x)  "
                f"ungated {case['ungated_seconds'] * 1000:8.1f} ms "
                f"({case['ungated_speedup']:5.2f}x)"
            )
            if case["parity_mismatches"]:
                failures.append(
                    f"sweep parity: {label} Z={z} has "
                    f"{case['parity_mismatches']} mismatching masks"
                )
    gate_case = next(
        c for c in report["sweep"]["ring"] if c["num_samples"] == gate_z
    )
    if gate_case["gated_speedup"] < sweep_floor:
        failures.append(
            f"gated sweep speedup {gate_case['gated_speedup']:.2f}x below "
            f"{sweep_floor}x at Z={gate_z}/S={gate_s} on the ring graph"
        )
    # The dense graph must at least break even under the new default
    # dispatch (this is what retiring the fuse cliff is predicated on).
    if not smoke:
        worst_dense = min(
            c["gated_speedup"] for c in report["sweep"]["er"]
        )
        report["worst_dense_gated_speedup"] = worst_dense
        if worst_dense < 0.7:
            failures.append(
                f"gated sweeps regress the dense graph to "
                f"{worst_dense:.2f}x of per-source"
            )

    print("== incremental selection restarts ==")
    sel = selection_case(er, sel_z, sel_c, sel_k, repeats)
    report["selection"] = sel
    print(
        f"k={sel['k']} Z={sel['num_samples']} |C|={sel['num_candidates']}: "
        f"full re-sweep {sel['full_resweep_seconds'] * 1000:8.1f} ms  "
        f"incremental {sel['incremental_seconds'] * 1000:8.1f} ms "
        f"({sel['per_round_speedup']:5.2f}x per round)"
    )
    if not sel["selections_identical"]:
        failures.append("incremental selection diverged from full re-sweep")
    if sel["per_round_speedup"] < round_floor:
        failures.append(
            f"incremental per-round speedup {sel['per_round_speedup']:.2f}x "
            f"below {round_floor}x"
        )

    if json_path:
        Path(json_path).write_text(json.dumps(report, indent=2))
        print(f"wrote {json_path}")

    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print("OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small graphs / parity-only quick check for CI",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the timing report as JSON",
    )
    args = parser.parse_args()
    return run(smoke=args.smoke, json_path=args.json)


if __name__ == "__main__":
    raise SystemExit(main())
