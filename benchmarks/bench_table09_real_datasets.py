"""Table 9: single-source-target comparison on the real-like datasets.

HC / MRP / IP / BE on the four dataset stand-ins with default parameters:
reliability gain, running time and peak memory.  Paper's shape: BE wins
or ties the gain everywhere (most prominently on sparse Twitter), MRP is
always lowest, HC is an order of magnitude slower, memory is similar
with MRP slightly lighter.
"""


from repro.experiments import (
    ResultTable,
    SingleStProtocol,
    compare_methods_single_st,
    default_estimator_factory,
)

from _common import (
    BENCH_L,
    BENCH_ZETA,
    load,
    method_label,
    queries_for,
    save_table,
)

DATASETS = ["lastfm", "as-topology", "dblp", "twitter"]
METHODS = ["hc", "mrp", "ip", "be"]


def run():
    table = ResultTable(
        f"Table 9: single-source-target maximization on real-like datasets "
        f"(k=4, zeta={BENCH_ZETA}, r=16, l={BENCH_L})",
        ["Dataset", "Method", "Reliability Gain", "Time (s)", "Peak MB"],
    )
    all_stats = {}
    for name in DATASETS:
        graph = load(name)
        queries = queries_for(graph, count=2, seed=17)
        # r=16/k=4 keeps Hill Climbing's candidate sweep tractable; the
        # relative picture is unchanged (see Tables 12-13 for larger k).
        protocol = SingleStProtocol(
            k=4,
            zeta=BENCH_ZETA,
            r=16,
            l=BENCH_L,
            evaluation_samples=600,
            track_memory=True,
            estimator_factory=default_estimator_factory(120),
        )
        stats = compare_methods_single_st(graph, queries, METHODS, protocol)
        for method in METHODS:
            table.add_row(
                name,
                method_label(method),
                stats[method].mean_gain,
                stats[method].mean_seconds,
                stats[method].mean_peak_mb,
            )
        all_stats[name] = stats
    table.add_note(
        "paper (k=10): BE wins gain on all datasets (lastFM 0.33, "
        "AS 0.42, DBLP 0.24, Twitter 0.19); HC ~10-30x slower than BE"
    )
    save_table(table, "table09_real_datasets")
    return all_stats


def test_table09(benchmark):
    all_stats = benchmark.pedantic(run, rounds=1, iterations=1)
    be_wins = 0
    for name, stats in all_stats.items():
        # MRP (single path) never beats BE (multiple paths) materially.
        assert stats["be"].mean_gain >= stats["mrp"].mean_gain - 0.05
        # BE never trails IP beyond evaluation noise.
        assert stats["be"].mean_gain >= stats["ip"].mean_gain - 0.05
        # HC pays a large time premium for comparable quality.
        assert stats["hc"].mean_seconds > stats["be"].mean_seconds
        if stats["be"].mean_gain >= stats["ip"].mean_gain - 0.02:
            be_wins += 1
    # BE wins or ties IP on at least half the datasets (paper: all; at
    # 2 queries per dataset the tie band absorbs sampling noise).
    assert be_wins >= len(all_stats) // 2
