"""Table 10: single-source-target comparison on the synthetic datasets.

The four generator families (random / regular / small-world / scale-free)
at two densities each, uniform (0, 0.6] probabilities.  Paper's shape:
BE wins gain everywhere; regular graphs allow the largest gains (long
original paths leave the most room) and run fastest; random graphs are
slowest.
"""


from repro.experiments import (
    ResultTable,
    SingleStProtocol,
    compare_methods_single_st,
    default_estimator_factory,
)

from _common import method_label, queries_for, save_table
from repro import datasets

DATASETS = [
    "random-1", "random-2", "regular-1", "regular-2",
    "smallworld-1", "smallworld-2", "scalefree-1", "scalefree-2",
]
METHODS = ["mrp", "ip", "be"]
NUM_NODES = 500


def run():
    table = ResultTable(
        "Table 10: single-source-target maximization on synthetic datasets "
        "(k=5, zeta=0.5, r=15, l=15)",
        ["Dataset", "Method", "Reliability Gain", "Time (s)"],
    )
    all_stats = {}
    for name in DATASETS:
        graph = datasets.load(name, num_nodes=NUM_NODES, seed=0)
        # Regular graphs have long shortest paths; keep hops modest so
        # queries exist in every family.
        queries = queries_for(graph, count=2, seed=19, min_hops=3, max_hops=5)
        protocol = SingleStProtocol(
            k=5,
            zeta=0.5,
            r=15,
            l=15,
            evaluation_samples=500,
            estimator_factory=default_estimator_factory(120),
        )
        stats = compare_methods_single_st(graph, queries, METHODS, protocol)
        for method in METHODS:
            table.add_row(
                name,
                method_label(method),
                stats[method].mean_gain,
                stats[method].mean_seconds,
            )
        all_stats[name] = stats
    table.add_note(
        "paper (k=10, 1M nodes): BE gains 0.16-0.24, highest on regular "
        "graphs; random graphs slowest, regular fastest"
    )
    save_table(table, "table10_synthetic_datasets")
    return all_stats


def test_table10(benchmark):
    all_stats = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, stats in all_stats.items():
        assert stats["be"].mean_gain >= stats["mrp"].mean_gain - 0.05
        assert 0.0 <= stats["be"].mean_gain <= 1.0
    # Regular graphs leave the most room for improvement (long paths).
    regular_gain = all_stats["regular-1"]["be"].mean_gain
    random_gain = all_stats["random-1"]["be"].mean_gain
    assert regular_gain >= random_gain - 0.15
