"""Tables 14-15: sensitivity to the new-edge probability zeta.

Paper's shape: reliability gain grows roughly linearly with zeta (the
new edges simply carry more probability mass), occasionally faster when
the optimal edge set flips (Observation 1); running time is insensitive
to zeta.
"""


from repro.experiments import (
    ResultTable,
    SingleStProtocol,
    compare_methods_single_st,
    default_estimator_factory,
)

from _common import method_label, queries_for, save_table
from repro import datasets

ZETA_VALUES = [0.3, 0.5, 0.7, 1.0]
METHODS = ["mrp", "be"]
DATASETS = ["as-topology", "twitter"]


def run():
    results = {}
    for name in DATASETS:
        graph = datasets.load(name, num_nodes=500, seed=0)
        queries = queries_for(graph, count=2, seed=31)
        table = ResultTable(
            f"Tables 14/15: varying new-edge probability zeta "
            f"({name}-like, k=5, r=15, l=15)",
            ["zeta", *[f"{method_label(m)} gain" for m in METHODS],
             *[f"{method_label(m)} time (s)" for m in METHODS]],
        )
        per_zeta = {}
        for zeta in ZETA_VALUES:
            protocol = SingleStProtocol(
                k=5, zeta=zeta, r=15, l=15, evaluation_samples=500,
                estimator_factory=default_estimator_factory(120),
            )
            stats = compare_methods_single_st(graph, queries, METHODS, protocol)
            table.add_row(
                zeta,
                *[stats[m].mean_gain for m in METHODS],
                *[stats[m].mean_seconds for m in METHODS],
            )
            per_zeta[zeta] = stats
        table.add_note("paper: gain ~linear in zeta; time insensitive")
        save_table(table, f"table14_15_vary_zeta_{name}")
        results[name] = per_zeta
    return results


def test_tables14_15(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, per_zeta in results.items():
        gains = [per_zeta[z]["be"].mean_gain for z in ZETA_VALUES]
        # Strictly more probable new edges help strictly more (up to noise).
        assert gains[-1] > gains[0]
        assert gains == sorted(gains) or all(
            b >= a - 0.05 for a, b in zip(gains, gains[1:], strict=False)
        )
        # zeta=1 dominates every other setting.
        assert gains[-1] == max(gains)
