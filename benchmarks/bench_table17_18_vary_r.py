"""Tables 17-18: sensitivity to the candidate-node count r.

Time 1 = search-space elimination, Time 2 = top-k selection.  Paper's
shape: too-small r hurts quality (over-elimination); quality saturates
around r=80-100 (here, scaled graphs saturate earlier); Time 1 grows
sharply with r while Time 2 for the path-based methods barely moves.
"""


from repro.experiments import (
    ResultTable,
    SingleStProtocol,
    compare_methods_single_st,
    default_estimator_factory,
    elimination_timings,
)

from _common import queries_for, save_table
from repro import datasets

R_VALUES = [4, 8, 16, 32]
METHODS = ["mrp", "be"]
DATASETS = ["lastfm", "dblp"]


def run():
    results = {}
    for name in DATASETS:
        graph = datasets.load(name, num_nodes=500, seed=0)
        queries = queries_for(graph, count=2, seed=43)
        table = ResultTable(
            f"Tables 17/18: varying candidate-node count r ({name}-like, "
            f"k=5, zeta=0.5, l=15)",
            ["r", "BE gain", "MRP gain", "Time1: elim (s)",
             "Time2: BE select (s)", "candidates"],
        )
        per_r = {}
        for r in R_VALUES:
            protocol = SingleStProtocol(
                k=5, zeta=0.5, r=r, l=15, evaluation_samples=500,
                estimator_factory=default_estimator_factory(120),
            )
            stats = compare_methods_single_st(graph, queries, METHODS, protocol)
            elim_seconds, candidates = elimination_timings(
                graph, queries, default_estimator_factory(120), r=r
            )
            table.add_row(
                r,
                stats["be"].mean_gain,
                stats["mrp"].mean_gain,
                elim_seconds,
                stats["be"].mean_seconds,
                f"{candidates:.0f}",
            )
            per_r[r] = (stats, elim_seconds, candidates)
        table.add_note(
            "paper: gain saturates at r=80-100; Time1 rises sharply with "
            "r, Time2 for IP/BE almost flat"
        )
        save_table(table, f"table17_18_vary_r_{name}")
        results[name] = per_r
    return results


def test_tables17_18(benchmark):
    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, per_r in results.items():
        candidates = [per_r[r][2] for r in R_VALUES]
        # The candidate space grows monotonically with r.
        assert all(b >= a for a, b in zip(candidates, candidates[1:], strict=False))
        # Quality does not degrade as r grows (more options never hurt).
        gains = [per_r[r][0]["be"].mean_gain for r in R_VALUES]
        assert gains[-1] >= gains[0] - 0.07
