"""Benchmark: batched candidate-gain kernel vs the per-candidate loop.

Hill climbing is the paper's strongest-quality baseline and its slowest:
every greedy round re-estimates reliability once per candidate.  The
selection-gain kernel (:mod:`repro.engine.selection`) collapses a round
to two batch-BFS sweeps plus one coin row + popcount per candidate, all
against one shared world batch.

This benchmark times hill climbing (k=5) and individual top-k over a
1k-node graph with ~200 candidate edges at Z=1000, on both paths —
``vectorized=False`` forces the per-candidate estimator loop (itself
engine-backed, i.e. the strongest status quo) — and asserts the kernel
is >= 10x faster on hill climbing (the PR gate).

Parity fixtures: on graphs whose greedy choices are forced (a certain
bridging edge, then all-zero gains -> documented lowest-index
tie-break; and well-separated bridge gains), both paths must select
bit-for-bit identical edge sequences.

Usage::

    python benchmarks/bench_selection_batched.py                # >= 10x gate
    python benchmarks/bench_selection_batched.py --smoke        # quick CI check
    python benchmarks/bench_selection_batched.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np  # noqa: E402

from repro.baselines import hill_climbing, individual_top_k  # noqa: E402
from repro.graph import (  # noqa: E402
    UncertainGraph,
    assign_uniform,
    erdos_renyi,
    fixed_new_edge_probability,
)
from repro.reliability import make_estimator  # noqa: E402


def build_graph(num_nodes: int, num_edges: int, seed: int = 0):
    graph = erdos_renyi(num_nodes, num_edges=num_edges, seed=seed)
    return assign_uniform(graph, 0.05, 0.5, seed=seed + 1)


def missing_candidates(graph, count: int, seed: int = 7):
    """~count deterministic missing (u, v) pairs spread over the graph."""
    n = graph.num_nodes
    rng = np.random.default_rng(seed)
    seen = set()
    pairs = []
    while len(pairs) < count:
        u, v = (int(x) for x in rng.integers(0, n, size=2))
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in seen or graph.has_edge(*key):
            continue
        seen.add(key)
        pairs.append(key)
    return pairs


def time_selection(method, graph, s, t, k, candidates, zeta, z, seed,
                   vectorized):
    estimator = make_estimator("mc", z, seed=seed)
    start = time.perf_counter()
    edges = method(
        graph, s, t, k, candidates, zeta, estimator, vectorized=vectorized
    )
    return time.perf_counter() - start, edges


def parity_fixtures():
    """(graph, s, t, k, candidates, prob_model) cases where both paths
    must produce bit-for-bit identical selection sequences."""
    # Fixture 1: two certain chains 0-1-2 / 3-4-5.  Candidate (2, 3)
    # bridges them with p=1.0 (gain exactly 1.0); afterwards every gain
    # is exactly zero, so rounds fall back to the documented
    # lowest-index tie-break on every path, sampling noise included.
    chains = UncertainGraph()
    for u, v in ((0, 1), (1, 2), (3, 4), (4, 5)):
        chains.add_edge(u, v, 1.0)
    probs1 = {(2, 3): 1.0, (0, 5): 0.5, (1, 4): 0.25}

    # Fixture 2: bridges with widely separated gains (~0.9 / 0.45 /
    # 0.09) — orders of magnitude above MC noise at Z=2000.
    star = UncertainGraph()
    star.add_edge(1, 5, 1.0)
    star.add_edge(2, 5, 0.5)
    star.add_edge(3, 5, 0.1)
    star.add_node(0)
    probs2 = {(0, 1): 0.9, (0, 2): 0.9, (0, 3): 0.9}

    return [
        ("forced-tie-break", chains, 0, 5, 3, list(probs1), probs1),
        ("separated-gains", star, 0, 5, 2, list(probs2), probs2),
    ]


def check_parity(z: int, seed: int):
    """Selected edge sequences must match across both paths."""
    failures = []
    for name, graph, s, t, k, candidates, probs in parity_fixtures():
        prob_model = lambda u, v, probs=probs: probs[(u, v)]
        per_candidate = hill_climbing(
            graph, s, t, k, candidates, prob_model,
            make_estimator("mc", z, seed=seed), vectorized=False,
        )
        batched = hill_climbing(
            graph, s, t, k, candidates, prob_model,
            make_estimator("mc", z, seed=seed),
        )
        if per_candidate != batched:
            failures.append(
                {"fixture": name, "per_candidate": per_candidate,
                 "batched": batched}
            )
    return failures


def run(smoke: bool, json_path: str | None) -> int:
    if smoke:
        num_nodes, num_edges, z = 200, 600, 256
        num_candidates, k = 40, 2
        # Smoke only gates "runs and agrees" (the parity check below);
        # millisecond-scale timings on loaded CI runners are too noisy
        # to gate, so no speedup floor.
        required_speedup = 0.0
    else:
        num_nodes, num_edges, z = 1000, 3000, 1000
        num_candidates, k = 200, 5
        required_speedup = 10.0

    graph = build_graph(num_nodes, num_edges)
    candidates = missing_candidates(graph, num_candidates)
    s, t = 0, graph.num_nodes - 1
    zeta = fixed_new_edge_probability(0.5)
    print(f"graph: n={graph.num_nodes} m={graph.num_edges} "
          f"Z={z} |C|={len(candidates)} k={k}")

    report = {
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "num_samples": z,
        "num_candidates": len(candidates),
        "k": k,
        "required_speedup": required_speedup,
        "methods": [],
    }
    gated_speedup = None
    for label, method, budget in (
        ("hill_climbing", hill_climbing, k),
        ("individual_top_k", individual_top_k, k),
    ):
        loop_s, loop_edges = time_selection(
            method, graph, s, t, budget, candidates, zeta, z, 17,
            vectorized=False,
        )
        kernel_s, kernel_edges = time_selection(
            method, graph, s, t, budget, candidates, zeta, z, 17,
            vectorized=None,
        )
        speedup = loop_s / kernel_s if kernel_s > 0 else float("inf")
        print(f"[{label}]")
        print(f"  per-candidate loop: {loop_s * 1000:9.1f} ms")
        print(f"  batched kernel:     {kernel_s * 1000:9.1f} ms")
        print(f"  speedup:            {speedup:9.1f}x")
        report["methods"].append({
            "method": label,
            "per_candidate_seconds": loop_s,
            "kernel_seconds": kernel_s,
            "speedup": speedup,
        })
        if label == "hill_climbing":
            gated_speedup = speedup

    parity_failures = check_parity(z=2000, seed=17)
    report["parity_failures"] = parity_failures

    if json_path:
        Path(json_path).write_text(json.dumps(report, indent=2))
        print(f"wrote {json_path}")

    if parity_failures:
        for failure in parity_failures:
            print(f"FAIL: parity fixture {failure['fixture']}: "
                  f"per-candidate {failure['per_candidate']} != "
                  f"batched {failure['batched']}")
        return 1
    print("parity fixtures: selected edge sets identical")
    if gated_speedup < required_speedup:
        print(f"FAIL: hill-climbing speedup {gated_speedup:.1f}x below "
              f"{required_speedup}x")
        return 1
    print("OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small graph / small candidate set quick check for CI",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the timing report as JSON",
    )
    args = parser.parse_args()
    return run(smoke=args.smoke, json_path=args.json)


if __name__ == "__main__":
    raise SystemExit(main())
